//! Durability for [`DynamicMap`]: run files, write-ahead logging, and
//! crash recovery, built on the `ist-store` primitives.
//!
//! ## Protocol
//!
//! A persistent map owns one directory containing immutable run files
//! (`run-NNNNNN.ist`), exactly one live WAL (`wal-NNNNNN.log`), and the
//! atomically-rotated `MANIFEST` naming both. The engine mirrors the
//! map's run structure as [`RunRef`]s and keeps it consistent through
//! three hooks:
//!
//! * **log** — every mutation appends one WAL record *before* it is
//!   applied in memory (`insert`/`remove` one scalar record each,
//!   `batch_*` one delta record). The [`FsyncPolicy`] decides when
//!   appended records become *acked* (crash-proof).
//! * **seal** — when the buffer seals into an L0 run, the run file is
//!   durably written, a fresh WAL is created, and the manifest is
//!   rotated to name both; the old WAL (whose records are now all
//!   represented by the run) is deleted. A crash anywhere in this
//!   window recovers from the *old* manifest + old WAL; the partially
//!   installed files are ignored orphans.
//! * **install** — a compaction writes its merged run file and rotates
//!   the manifest *before* the consumed run files are deleted.
//!
//! Recovery ([`DynamicMap::open_with`]) loads the manifest's runs,
//! replays the WAL tail through the normal mutation paths (with the
//! engine detached, so nothing is re-logged), then checkpoints: a fresh
//! WAL seeded with one always-fsynced snapshot of the write buffer, a
//! rotated manifest, and deletion of every unreferenced file. Replay
//! can never trigger a seal: a WAL's records are exactly the mutations
//! since the last seal, which by construction never overflowed the
//! buffer, and buffer evolution is deterministic given the runs (whose
//! per-key weight sums compactions preserve).
//!
//! ## Failure latching
//!
//! The engine never panics on storage failure: the first error poisons
//! it — subsequent mutations are rejected (returning the neutral
//! `false`/`0`), [`DynamicMap::store_error`] reports the cause, and the
//! in-memory map stays fully readable. The on-disk state is always a
//! consistent prefix of the acknowledged history.

use crate::sync::{Arc, Mutex};
use std::any::TypeId;
use std::marker::PhantomData;
use std::mem::size_of;
use std::path::{Path, PathBuf};

use crate::alloc::AlignedVec;
use crate::dynamic::{lock, DynamicMap, Plan, Prefix, Run};
use crate::map::StaticMap;
use ist_store::{
    read_wal, run_file_name, wal_file_name, Codec, Input, Manifest, RunReader, RunRef, RunSections,
    StoreConfig, StoreError, Vfs, WalWriter, MANIFEST_NAME,
};

// ---------------------------------------------------------------------------
// The hook trait dynamic.rs talks to
// ---------------------------------------------------------------------------

/// Object-safe durability hooks. `DynamicMap` stores this as a trait
/// object so its mutation paths stay free of `Codec` bounds — the
/// bounds live only on [`StoreEngine`]'s impl and on the public
/// `persist_to`/`open` constructors.
pub(crate) trait RunSink<K, V>: Send {
    /// Log one insert. `false` rejects the mutation (sink poisoned or
    /// the append failed, poisoning it now).
    fn log_put(&mut self, key: &K, value: &V) -> bool;
    /// Log one remove. `false` rejects the mutation.
    fn log_del(&mut self, key: &K) -> bool;
    /// Log one bulk delta (the verbatim, pre-sort batch). `false`
    /// rejects the mutation.
    fn log_delta(&mut self, delta: &[(K, Option<V>)]) -> bool;
    /// The buffer just sealed into `run` (pushed to L0): write the run
    /// file, rotate WAL + manifest.
    fn on_seal(&mut self, run: &Run<K, V>);
    /// A compaction is installing: write the merged run file (if any),
    /// rotate the manifest per `plan`, delete the consumed files.
    fn on_install(&mut self, plan: Plan, merged: Option<&Run<K, V>>);
    /// Fsync the WAL, making every appended record durable.
    fn flush(&mut self) -> Result<(), StoreError>;
    /// Display form of the latched error, if poisoned.
    fn error_display(&self) -> Option<String>;
    /// WAL records guaranteed to survive a crash, counted since this
    /// engine was attached (rotated-away records included).
    fn acked_records(&self) -> u64;
}

// ---------------------------------------------------------------------------
// WAL record codec
// ---------------------------------------------------------------------------

const REC_PUT: u8 = 1;
const REC_DEL: u8 = 2;
const REC_DELTA: u8 = 3;

/// One decoded WAL record.
enum WalRecord<K, V> {
    Put(K, V),
    Del(K),
    Delta(Vec<(K, Option<V>)>),
}

fn encode_put<K: Codec, V: Codec>(key: &K, value: &V) -> Vec<u8> {
    let mut out = vec![REC_PUT];
    key.encode_into(&mut out);
    value.encode_into(&mut out);
    out
}

fn encode_del<K: Codec>(key: &K) -> Vec<u8> {
    let mut out = vec![REC_DEL];
    key.encode_into(&mut out);
    out
}

fn encode_delta<K: Codec, V: Codec>(delta: &[(K, Option<V>)]) -> Vec<u8> {
    let mut out = vec![REC_DELTA];
    (delta.len() as u32).encode_into(&mut out);
    for (key, slot) in delta {
        key.encode_into(&mut out);
        slot.encode_into(&mut out);
    }
    out
}

/// Total over arbitrary bytes: corrupt records are typed errors, never
/// panics or unbounded allocations.
fn decode_record<K: Codec, V: Codec>(bytes: &[u8]) -> Result<WalRecord<K, V>, StoreError> {
    let mut input = Input::new(bytes);
    let tag = u8::decode_from(&mut input)?;
    let record = match tag {
        REC_PUT => WalRecord::Put(K::decode_from(&mut input)?, V::decode_from(&mut input)?),
        REC_DEL => WalRecord::Del(K::decode_from(&mut input)?),
        REC_DELTA => {
            let count = u32::decode_from(&mut input)? as usize;
            if count > input.remaining() {
                return Err(StoreError::Corrupt(
                    "wal delta count exceeds record size".into(),
                ));
            }
            let mut delta = Vec::with_capacity(count);
            for _ in 0..count {
                let key = K::decode_from(&mut input)?;
                let slot = Option::<V>::decode_from(&mut input)?;
                delta.push((key, slot));
            }
            WalRecord::Delta(delta)
        }
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown wal record tag {other}"
            )));
        }
    };
    if !input.is_empty() {
        return Err(StoreError::Corrupt("trailing bytes in wal record".into()));
    }
    Ok(record)
}

// ---------------------------------------------------------------------------
// Run file encode/decode
// ---------------------------------------------------------------------------

/// Byte width of `T` when it is one of the plain-old-data integer key
/// types whose in-memory representation *is* its little-endian on-disk
/// encoding — the zero-copy bulk path. `None` (always, on big-endian
/// targets) routes through the per-element codec.
fn pod_width<T: 'static>() -> Option<usize> {
    if cfg!(target_endian = "big") {
        return None;
    }
    let id = TypeId::of::<T>();
    macro_rules! check {
        ($($t:ty),*) => {
            $(if id == TypeId::of::<$t>() { return Some(size_of::<$t>()); })*
        };
    }
    check!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);
    None
}

/// Serialize `run` into a durably-written run file at `path`. The
/// sections hold the arrays in **layout order**, so the write is one
/// sequential pass over memory that is already in its final shape.
fn write_run_file<K, V>(
    vfs: &dyn Vfs,
    path: &Path,
    run: &Run<K, V>,
    seq: (u64, u64),
) -> Result<(), StoreError>
where
    K: Ord + Send + Sync + 'static + Codec,
    V: Send + Codec,
{
    let n = run.map.len();
    // Keys: fixed-width integer keys are written as their raw bytes
    // (identical to their codec bytes, minus any per-element call);
    // everything else goes through `Codec` element by element.
    let mut encoded_keys = Vec::new();
    let key_bytes: &[u8] = if let Some(w) = pod_width::<K>() {
        // SAFETY: `pod_width` only matches integer primitives: no
        // padding, no invalid bit patterns, and `K` *is* that type.
        unsafe { std::slice::from_raw_parts(run.map.keys().as_ptr().cast::<u8>(), n * w) }
    } else {
        for key in run.map.keys() {
            key.encode_into(&mut encoded_keys);
        }
        &encoded_keys
    };
    // Values: presence bitmap (bit i set = slot i holds a value), then
    // the present values in layout order.
    let mut vals = vec![0u8; n.div_ceil(8)];
    for (i, slot) in run.map.values().iter().enumerate() {
        if slot.is_some() {
            vals[i / 8] |= 1 << (i % 8);
        }
    }
    for value in run.map.values().iter().flatten() {
        value.encode_into(&mut vals);
    }
    // Weights: the rank-indexed prefix, raw little-endian i64s. The
    // common case — a fully compacted run where every version has
    // weight 1 — has the identity prefix `0, 1, …, n`, which is elided
    // entirely (`wts_len == 0`) and resynthesized at load; for a
    // 2^20-key run that is 8 MiB less to write, read, and checksum on
    // the cold-start path.
    let mut wts = Vec::new();
    if let Prefix::Explicit(prefix) = &run.prefix {
        if !prefix.iter().enumerate().all(|(i, &w)| w == i as i64) {
            wts.reserve_exact((n + 1) * 8);
            for w in prefix {
                w.encode_into(&mut wts);
            }
        }
    }
    ist_store::write_run(
        vfs,
        path,
        run.map.kind(),
        n as u64,
        seq,
        RunSections {
            keys: key_bytes,
            values: &vals,
            weights: &wts,
        },
    )
}

/// Load one run file back into memory: a single sequential pass, with
/// fixed-width keys bulk-read straight into a fresh cache-aligned
/// allocation. Total over arbitrary file contents.
fn load_run<K, V>(vfs: &dyn Vfs, path: &Path) -> Result<Run<K, V>, StoreError>
where
    K: Ord + Send + Sync + 'static + Codec,
    V: Send + 'static + Codec,
{
    let mut reader = RunReader::open(vfs, path)?;
    let header = *reader.header();
    let n = usize::try_from(header.n)
        .map_err(|_| StoreError::Corrupt("run entry count exceeds address space".into()))?;
    // Keys.
    let keys: AlignedVec<K> = if let Some(w) = pod_width::<K>() {
        let expect = (n as u64).checked_mul(w as u64);
        if expect != Some(header.keys_len) {
            return Err(StoreError::Corrupt(format!(
                "keys section is {} bytes but {n} keys of width {w} need {:?}",
                header.keys_len, expect
            )));
        }
        // SAFETY: integer keys accept any bit pattern, and
        // `read_keys_into` either fills the whole view or errors.
        unsafe { AlignedVec::from_pod_bytes_with(n, |bytes| reader.read_keys_into(bytes))? }
    } else {
        let bytes = reader.read_keys()?;
        // Every codec element consumes at least one byte, so a
        // successful decode bounds `n` by the section length; the
        // capacity hint is clamped the same way against a lying header.
        let mut keys = Vec::with_capacity(n.min(bytes.len()));
        let mut input = Input::new(&bytes);
        for _ in 0..n {
            keys.push(K::decode_from(&mut input)?);
        }
        if !input.is_empty() {
            return Err(StoreError::Corrupt("trailing bytes in keys section".into()));
        }
        AlignedVec::from_vec(keys)
    };
    // Values.
    let values: Vec<Option<V>> = if let Some(w) = pod_width::<V>() {
        decode_values_streaming(&mut reader, n, w)?
    } else {
        let vbytes = reader.read_values()?;
        let mut input = Input::new(&vbytes);
        let bitmap = input.take(n.div_ceil(8))?;
        let mut values: Vec<Option<V>> = Vec::with_capacity(n);
        for i in 0..n {
            if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                values.push(Some(V::decode_from(&mut input)?));
            } else {
                values.push(None);
            }
        }
        if !input.is_empty() {
            return Err(StoreError::Corrupt(
                "trailing bytes in values section".into(),
            ));
        }
        values
    };
    // Weights. An empty section is the elided unit-weight encoding:
    // the prefix is the identity `0, 1, …, n`, kept symbolic.
    let prefix = if header.wts_len == 0 {
        Prefix::Unit(n)
    } else {
        let expect_wts = (n as u64 + 1).checked_mul(8);
        if expect_wts != Some(header.wts_len) {
            return Err(StoreError::Corrupt(format!(
                "weights section is {} bytes but a {n}-entry prefix needs {:?}",
                header.wts_len, expect_wts
            )));
        }
        let mut wbytes = vec![0u8; reader.weights_len()];
        reader.read_weights_into(&mut wbytes)?;
        let mut prefix = Vec::with_capacity(n + 1);
        let mut input = Input::new(&wbytes);
        for _ in 0..=n {
            prefix.push(i64::decode_from(&mut input)?);
        }
        if prefix[0] != 0 {
            return Err(StoreError::Corrupt(
                "weight prefix does not start at zero".into(),
            ));
        }
        Prefix::Explicit(prefix)
    };
    Ok(Run {
        map: StaticMap::from_layout_parts(keys, AlignedVec::from_vec(values), header.kind),
        prefix,
    })
}

/// Decode a fixed-width value section (presence bitmap, then one
/// `w`-byte slot per present version) chunk-by-chunk as it streams off
/// disk, so the multi-megabyte section is never materialized and each
/// chunk is decoded while cache-hot. A `carry` buffer stitches the
/// element that straddles a chunk boundary. Total: every malformed
/// shape (short bitmap, mid-element end, trailing bytes) is a typed
/// error.
fn decode_values_streaming<V: Codec + 'static>(
    reader: &mut RunReader,
    n: usize,
    w: usize,
) -> Result<Vec<Option<V>>, StoreError> {
    let bm_len = n.div_ceil(8);
    let mut bitmap = vec![0u8; bm_len];
    let mut bm_filled = 0usize;
    let mut values: Vec<Option<V>> = Vec::with_capacity(n);
    let mut carry = [0u8; 16];
    let mut carry_len = 0usize;
    let mut next = 0usize;
    let mut all_present = false;
    debug_assert!(w <= carry.len(), "pod widths are at most 16 bytes");
    debug_assert_eq!(w, std::mem::size_of::<V>(), "pod width is the type's size");
    reader.read_values_with(|mut chunk| {
        if bm_filled < bm_len {
            let take = chunk.len().min(bm_len - bm_filled);
            bitmap[bm_filled..bm_filled + take].copy_from_slice(&chunk[..take]);
            bm_filled += take;
            chunk = &chunk[take..];
            if bm_filled < bm_len {
                // Bitmap spans chunks; no element may decode until it
                // is complete (its bits gate every element below).
                debug_assert!(chunk.is_empty(), "bitmap copy drains the chunk");
                return Ok(());
            }
            // Fully compacted runs have no tombstones: all-ones
            // bitmap, taken by the raw bulk loop below.
            let full = n / 8;
            all_present = bitmap[..full].iter().all(|&b| b == 0xFF)
                && (n.is_multiple_of(8) || bitmap[full] == (1u8 << (n % 8)) - 1);
        }
        if all_present {
            // Finish an element split across the chunk boundary.
            if carry_len > 0 {
                let take = (w - carry_len).min(chunk.len());
                carry[carry_len..carry_len + take].copy_from_slice(&chunk[..take]);
                carry_len += take;
                chunk = &chunk[take..];
                if carry_len < w {
                    return Ok(());
                }
                values.push(Some(V::decode_from(&mut Input::new(&carry[..w]))?));
                carry_len = 0;
                next += 1;
            }
            // Bulk-decode whole elements with no per-element error or
            // presence paths.
            let full = ((chunk.len() / w) * w).min((n - next) * w);
            values.extend(chunk[..full].chunks_exact(w).map(|c| {
                // SAFETY: `pod_width` proved `V` is a fixed-width
                // integer type (any bit pattern valid, size `w`,
                // little-endian encoding matches the host), and each
                // `chunks_exact` chunk is exactly `w` bytes.
                Some(unsafe { std::ptr::read_unaligned(c.as_ptr().cast::<V>()) })
            }));
            next += full / w;
            chunk = &chunk[full..];
            if next >= n {
                if chunk.is_empty() {
                    return Ok(());
                }
                return Err(StoreError::Corrupt(
                    "trailing bytes in values section".into(),
                ));
            }
            carry[..chunk.len()].copy_from_slice(chunk);
            carry_len = chunk.len();
            return Ok(());
        }
        loop {
            // Absent versions consume no payload bytes.
            while next < n && bitmap[next / 8] & (1 << (next % 8)) == 0 {
                values.push(None);
                next += 1;
            }
            if next >= n {
                if chunk.is_empty() {
                    return Ok(());
                }
                return Err(StoreError::Corrupt(
                    "trailing bytes in values section".into(),
                ));
            }
            if carry_len > 0 {
                let take = (w - carry_len).min(chunk.len());
                carry[carry_len..carry_len + take].copy_from_slice(&chunk[..take]);
                carry_len += take;
                chunk = &chunk[take..];
                if carry_len < w {
                    return Ok(());
                }
                values.push(Some(V::decode_from(&mut Input::new(&carry[..w]))?));
                carry_len = 0;
                next += 1;
            } else if chunk.len() >= w {
                values.push(Some(V::decode_from(&mut Input::new(&chunk[..w]))?));
                chunk = &chunk[w..];
                next += 1;
            } else {
                carry[..chunk.len()].copy_from_slice(chunk);
                carry_len = chunk.len();
                return Ok(());
            }
        }
    })?;
    while next < n && bitmap[next / 8] & (1 << (next % 8)) == 0 {
        values.push(None);
        next += 1;
    }
    if bm_filled != bm_len || carry_len != 0 || next != n {
        return Err(StoreError::Corrupt(
            "values section shorter than its bitmap declares".into(),
        ));
    }
    Ok(values)
}

// ---------------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------------

/// The per-map durability engine: owns the live WAL, mirrors the run
/// structure as manifest [`RunRef`]s, and latches the first error.
struct StoreEngine<K, V> {
    dir: PathBuf,
    cfg: StoreConfig,
    wal: WalWriter,
    /// Mirror of the map's run structure plus the id/seq counters, as
    /// last rotated to disk (`l0`/`tiers` are kept current; the scalar
    /// counters inside are updated at rotation time).
    manifest: Manifest,
    /// Next mutation sequence number (live; `manifest.next_seq` holds
    /// the value as of the last rotation).
    next_seq: u64,
    /// Records acked in WALs already rotated away (every record of a
    /// rotated WAL is represented by a durable run file).
    durable_records: u64,
    error: Option<StoreError>,
    _types: PhantomData<fn() -> (K, V)>,
}

impl<K, V> StoreEngine<K, V> {
    fn poison(&mut self, e: StoreError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    fn vfs(&self) -> &dyn Vfs {
        &*self.cfg.vfs
    }
}

impl<K, V> StoreEngine<K, V>
where
    K: Ord + Clone + Send + Sync + 'static + Codec,
    V: Clone + Send + Sync + 'static + Codec,
{
    fn log(&mut self, payload: &[u8], ops: u64) -> bool {
        if self.error.is_some() {
            return false;
        }
        match self.wal.append(payload) {
            Ok(_durable_now) => {
                self.next_seq += ops;
                true
            }
            Err(e) => {
                self.poison(e);
                false
            }
        }
    }

    /// The seal protocol: run file → fresh WAL → manifest rotation →
    /// old-WAL deletion. A crash between any two steps recovers cleanly
    /// (see the module docs).
    fn do_seal(&mut self, run: &Run<K, V>) -> Result<(), StoreError> {
        let id = self.manifest.next_run_id;
        let seq = (self.manifest.next_seq, self.next_seq.saturating_sub(1));
        write_run_file(self.vfs(), &self.dir.join(run_file_name(id)), run, seq)?;
        let new_wal_seq = self.manifest.wal_seq + 1;
        let new_wal = WalWriter::create(
            self.vfs(),
            &self.dir.join(wal_file_name(new_wal_seq)),
            new_wal_seq,
            self.cfg.fsync,
        )?;
        let old_wal_path = self.dir.join(wal_file_name(self.manifest.wal_seq));
        let old_appended = self.wal.appended();
        self.manifest.next_run_id = id + 1;
        self.manifest.wal_seq = new_wal_seq;
        self.manifest.next_seq = self.next_seq;
        self.manifest.l0.push(RunRef {
            id,
            seq_lo: seq.0,
            seq_hi: seq.1,
        });
        self.manifest.write_atomic(self.vfs(), &self.dir)?;
        // Point of no return passed: every record of the old WAL is
        // now represented by the (manifest-referenced, fsynced) run
        // file, so all of them count as durable and the log can go.
        self.wal = new_wal;
        self.durable_records += old_appended;
        let _ = self.vfs().remove_file(&old_wal_path);
        Ok(())
    }

    /// The install protocol: merged run file → manifest rotation →
    /// consumed-file deletion (strictly after the rotation).
    fn do_install(&mut self, plan: Plan, merged: Option<&Run<K, V>>) -> Result<(), StoreError> {
        // `plan_compaction` grows the live tiers vector at *plan* time
        // (a leveled plan over empty tiers still reports
        // `full_tiers == 1`); the mirror grows here, at install time,
        // so match the live length before slicing by the plan's tier
        // prefix. The grown tiers are empty — no runs are consumed
        // from them.
        while self.manifest.tiers.len() < plan.full_tiers.max(plan.target + 1) {
            self.manifest.tiers.push(Vec::new());
        }
        // What the plan consumes, per the mirrored structure.
        let mut consumed: Vec<RunRef> = self.manifest.l0[..plan.consumed_l0].to_vec();
        for tier in &self.manifest.tiers[..plan.full_tiers] {
            consumed.extend_from_slice(tier);
        }
        if plan.partial_runs > 0 {
            consumed.extend_from_slice(&self.manifest.tiers[plan.full_tiers][..plan.partial_runs]);
        }
        // Write the merged run file before anything references it.
        let new_ref = match merged {
            Some(run) => {
                let id = self.manifest.next_run_id;
                let seq = (
                    consumed.iter().map(|r| r.seq_lo).min().unwrap_or(0),
                    consumed.iter().map(|r| r.seq_hi).max().unwrap_or(0),
                );
                write_run_file(self.vfs(), &self.dir.join(run_file_name(id)), run, seq)?;
                Some(RunRef {
                    id,
                    seq_lo: seq.0,
                    seq_hi: seq.1,
                })
            }
            None => None,
        };
        // Mirror the structural swap `DynamicMap::install` is about to
        // perform, then rotate.
        self.manifest.l0.drain(..plan.consumed_l0);
        for tier in &mut self.manifest.tiers[..plan.full_tiers] {
            tier.clear();
        }
        if plan.partial_runs > 0 {
            self.manifest.tiers[plan.full_tiers].drain(..plan.partial_runs);
        }
        while self.manifest.tiers.len() <= plan.target {
            self.manifest.tiers.push(Vec::new());
        }
        if let Some(r) = new_ref {
            self.manifest.next_run_id = r.id + 1;
            self.manifest.tiers[plan.target].insert(0, r);
        }
        self.manifest.next_seq = self.next_seq;
        self.manifest.write_atomic(self.vfs(), &self.dir)?;
        // Only now are the consumed files unreferenced.
        for r in consumed {
            let _ = self.vfs().remove_file(&self.dir.join(run_file_name(r.id)));
        }
        Ok(())
    }
}

impl<K, V> RunSink<K, V> for StoreEngine<K, V>
where
    K: Ord + Clone + Send + Sync + 'static + Codec,
    V: Clone + Send + Sync + 'static + Codec,
{
    fn log_put(&mut self, key: &K, value: &V) -> bool {
        let payload = encode_put(key, value);
        self.log(&payload, 1)
    }

    fn log_del(&mut self, key: &K) -> bool {
        let payload = encode_del(key);
        self.log(&payload, 1)
    }

    fn log_delta(&mut self, delta: &[(K, Option<V>)]) -> bool {
        let payload = encode_delta(delta);
        self.log(&payload, delta.len() as u64)
    }

    fn on_seal(&mut self, run: &Run<K, V>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.do_seal(run) {
            self.poison(e);
        }
    }

    fn on_install(&mut self, plan: Plan, merged: Option<&Run<K, V>>) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.do_install(plan, merged) {
            self.poison(e);
        }
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        if let Some(e) = &self.error {
            return Err(StoreError::Poisoned {
                reason: e.to_string(),
            });
        }
        match self.wal.sync() {
            Ok(()) => Ok(()),
            Err(e) => {
                let reported = StoreError::Poisoned {
                    reason: e.to_string(),
                };
                self.poison(e);
                Err(reported)
            }
        }
    }

    fn error_display(&self) -> Option<String> {
        self.error.as_ref().map(StoreError::to_string)
    }

    fn acked_records(&self) -> u64 {
        self.durable_records + self.wal.acked()
    }
}

/// Delete every file in `dir` the manifest does not reference (crash
/// orphans, rotated-away WALs, stale `MANIFEST.tmp`). Best-effort:
/// deletion failures leave garbage a later open will retry on.
fn cleanup_dir(vfs: &dyn Vfs, dir: &Path, manifest: &Manifest) {
    let Ok(names) = vfs.list(dir) else { return };
    let live_wal = wal_file_name(manifest.wal_seq);
    for name in names {
        let keep = name == MANIFEST_NAME
            || name == live_wal
            || manifest.all_runs().any(|r| run_file_name(r.id) == name);
        if !keep {
            let _ = vfs.remove_file(&dir.join(&name));
        }
    }
}

// ---------------------------------------------------------------------------
// Public API on DynamicMap
// ---------------------------------------------------------------------------

impl<K, V> DynamicMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static + Codec,
    V: Clone + Send + Sync + 'static + Codec,
{
    /// Make this map persistent in `dir`: every resident run is written
    /// as an immutable run file, the write buffer is snapshotted into a
    /// fresh (fsynced) WAL, and from here on every mutation is logged
    /// to the WAL **before** it is applied. `dir` is created if needed
    /// and taken over: files from a previous map in the same directory
    /// are replaced.
    ///
    /// Pending compaction work is drained first ([`DynamicMap::quiesce`])
    /// so the persisted structure is compact.
    ///
    /// # Panics
    /// Panics if the map is already persistent.
    ///
    /// # Errors
    /// Any filesystem failure; the map is left non-persistent (and
    /// fully usable in memory) in that case.
    pub fn persist_to(
        &mut self,
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
    ) -> Result<(), StoreError> {
        assert!(
            self.store.is_none(),
            "DynamicMap::persist_to: map is already persistent"
        );
        self.quiesce();
        let dir = dir.as_ref().to_path_buf();
        let vfs = &*cfg.vfs;
        vfs.create_dir_all(&dir)?;
        let mut manifest = Manifest {
            kind: self.kind,
            algorithm: self.algorithm,
            buffer_cap: self.buffer_cap as u64,
            next_run_id: 0,
            wal_seq: 1,
            next_seq: 1,
            l0: Vec::new(),
            tiers: Vec::new(),
        };
        debug_assert!(self.l0.is_empty(), "quiesce drains all sealed runs");
        for tier in &self.tiers {
            let mut refs = Vec::with_capacity(tier.len());
            for run in tier {
                let id = manifest.next_run_id;
                manifest.next_run_id += 1;
                // Pre-persistence history has no sequence numbers.
                write_run_file(vfs, &dir.join(run_file_name(id)), run, (0, 0))?;
                refs.push(RunRef {
                    id,
                    seq_lo: 0,
                    seq_hi: 0,
                });
            }
            manifest.tiers.push(refs);
        }
        let (wal, next_seq) = checkpoint_wal(vfs, &dir, 1, &cfg, self, 1)?;
        manifest.write_atomic(vfs, &dir)?;
        cleanup_dir(vfs, &dir, &manifest);
        self.store = Some(Mutex::new(Box::new(StoreEngine::<K, V> {
            dir,
            cfg,
            wal,
            manifest,
            next_seq,
            durable_records: 0,
            error: None,
            _types: PhantomData,
        })));
        Ok(())
    }

    /// Reopen a map persisted in `dir` with the default
    /// [`StoreConfig`] (real filesystem, fsync on every WAL append).
    ///
    /// # Errors
    /// See [`DynamicMap::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreConfig::new())
    }

    /// Reopen a map persisted in `dir`: load the manifest's runs,
    /// replay the WAL tail, and resume exactly where the previous
    /// process left off (every acknowledged write present; a torn tail
    /// record from a crash mid-append is tolerated and discarded).
    ///
    /// The map's layout, construction algorithm, and buffer capacity
    /// come from the manifest; compaction mode and policy are process
    /// configuration — chain [`DynamicMap::with_compaction_mode`] /
    /// [`DynamicMap::with_policy`] to override the defaults.
    ///
    /// # Errors
    /// Typed [`StoreError`]s for every failure mode — missing or
    /// corrupt files never panic.
    pub fn open_with(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let vfs = &*cfg.vfs;
        let manifest = Manifest::read(vfs, &dir)?;
        let buffer_cap = usize::try_from(manifest.buffer_cap)
            .map_err(|_| StoreError::Corrupt("buffer_cap exceeds address space".into()))?;
        let mut map = DynamicMap::with_config(manifest.kind, manifest.algorithm, buffer_cap);
        for r in &manifest.l0 {
            let run = load_run(vfs, &dir.join(run_file_name(r.id)))?;
            map.l0.push(Arc::new(run));
        }
        for tier in &manifest.tiers {
            let mut runs = Vec::with_capacity(tier.len());
            for r in tier {
                runs.push(Arc::new(load_run(vfs, &dir.join(run_file_name(r.id)))?));
            }
            map.tiers.push(runs);
        }
        // Replay the WAL tail through the normal mutation paths (the
        // engine is not attached yet, so nothing is re-logged and the
        // map behaves exactly as it did when these ops first ran).
        // Sealing is suppressed: the WAL's final record can be the one
        // whose pre-crash application triggered the (crash-interrupted)
        // seal, and re-sealing now would create a run the not-yet-
        // attached engine never mirrors. The overflow is re-triggered
        // through the durable seal path right after attach.
        let contents = read_wal(
            vfs,
            &dir.join(wal_file_name(manifest.wal_seq)),
            Some(manifest.wal_seq),
        )?;
        map.seal_suppressed = true;
        let mut next_seq = manifest.next_seq;
        for record in &contents.records {
            match decode_record::<K, V>(record)? {
                WalRecord::Put(k, v) => {
                    map.insert(k, v);
                    next_seq += 1;
                }
                WalRecord::Del(k) => {
                    map.remove(&k);
                    next_seq += 1;
                }
                WalRecord::Delta(delta) => {
                    next_seq += delta.len() as u64;
                    map.apply_batch(delta);
                }
            }
        }
        // Checkpoint: fresh WAL seeded with the recovered buffer, the
        // manifest rotated to it, orphans cleaned.
        let new_wal_seq = manifest.wal_seq + 1;
        let (wal, next_seq) = checkpoint_wal(vfs, &dir, new_wal_seq, &cfg, &map, next_seq)?;
        let mut manifest = manifest;
        manifest.wal_seq = new_wal_seq;
        manifest.next_seq = next_seq;
        manifest.write_atomic(vfs, &dir)?;
        cleanup_dir(vfs, &dir, &manifest);
        map.store = Some(Mutex::new(Box::new(StoreEngine::<K, V> {
            dir,
            cfg,
            wal,
            manifest,
            next_seq,
            durable_records: 0,
            error: None,
            _types: PhantomData,
        })));
        // Engine attached: fire any seal the replay deferred, so the
        // overflow goes through the durable path with the mirror live.
        map.seal_suppressed = false;
        map.maybe_seal();
        Ok(map)
    }
}

/// Create WAL `seq` seeded with one snapshot-delta of the map's write
/// buffer. The seed is **always** fsynced regardless of policy: the
/// buffer may hold writes that were acknowledged in a previous WAL
/// lifetime, and those must not become volatile again. Returns the
/// writer and the post-seed `next_seq`.
fn checkpoint_wal<K, V>(
    vfs: &dyn Vfs,
    dir: &Path,
    seq: u64,
    cfg: &StoreConfig,
    map: &DynamicMap<K, V>,
    next_seq: u64,
) -> Result<(WalWriter, u64), StoreError>
where
    K: Ord + Clone + Send + Sync + 'static + Codec,
    V: Clone + Send + Sync + 'static + Codec,
{
    let mut wal = WalWriter::create(vfs, &dir.join(wal_file_name(seq)), seq, cfg.fsync)?;
    let mut next_seq = next_seq;
    if !map.buffer.is_empty() {
        let delta: Vec<(K, Option<V>)> = map
            .buffer
            .iter()
            .map(|e| (e.key.clone(), e.slot.clone()))
            .collect();
        next_seq += delta.len() as u64;
        wal.append(&encode_delta(&delta))?;
        wal.sync()?;
    }
    Ok((wal, next_seq))
}

// Durability accessors that need no `Codec` bounds.
impl<K, V> DynamicMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// `true` iff this map logs its mutations to a store directory
    /// (attached via [`DynamicMap::persist_to`] or `open`).
    pub fn is_persistent(&self) -> bool {
        self.store.is_some()
    }

    /// Fsync the WAL: on return, every mutation applied so far is
    /// crash-durable regardless of the configured [fsync
    /// policy](ist_store::FsyncPolicy). A no-op `Ok` on a
    /// non-persistent map.
    ///
    /// # Errors
    /// [`StoreError::Poisoned`] if the engine latched an earlier error
    /// (or the sync itself failed, poisoning it now).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        match self.sink_mut() {
            None => Ok(()),
            Some(sink) => sink.flush(),
        }
    }

    /// The latched storage error, if the durability engine is poisoned.
    /// While poisoned, mutations are rejected (returning the neutral
    /// `false`/`0`) and reads keep serving the in-memory state.
    pub fn store_error(&self) -> Option<StoreError> {
        let engine = self.store.as_ref()?;
        lock(engine)
            .error_display()
            .map(|reason| StoreError::Poisoned { reason })
    }

    /// WAL records guaranteed to survive a crash, counted since the
    /// engine was attached (one per scalar mutation, one per batch;
    /// includes the checkpoint seed record if any). Monotone; `0` on a
    /// non-persistent map. The crash-injection suite uses this as the
    /// "acknowledged writes" watermark.
    pub fn acked_records(&self) -> u64 {
        self.store.as_ref().map_or(0, |e| lock(e).acked_records())
    }
}
