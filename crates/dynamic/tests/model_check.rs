//! Model-checked interleavings of the `DynamicMap` publication and
//! compaction state machine, driven by `ist-loom`.
//!
//! This suite only exists under `--cfg ist_loom`, which routes every
//! sync primitive in `ist_dynamic::sync` onto the model-checked shims:
//!
//! ```sh
//! RUSTFLAGS="--cfg ist_loom" cargo test -p ist-dynamic --test model_check
//! ```
//!
//! (In a normal build this file compiles to nothing, so plain
//! `cargo test` is unaffected.)
//!
//! Each test runs one scenario under **every** interleaving the
//! bounded-exhaustive scheduler generates — writer vs. reader-drop,
//! writer vs. background merge worker, and injected worker panics —
//! and asserts the invariants that the single-threaded test suite can
//! only check on one lucky schedule.

#![cfg(ist_loom)]

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ist_core::Algorithm;
use ist_dynamic::{CompactionMode, CompactionPolicy, DynamicMap};
use ist_loom::{thread, Model};
use ist_query::QueryKind;

/// A tiny map whose every structural event is adversarially frequent:
/// two-entry buffer, binomial tier schedule, strictly serial merges
/// (helper threads inside a merge would be invisible to the model
/// scheduler; `merge_threads(1)` keeps the concurrency surface exactly
/// the writer, the workers, and the readers the test spawns).
fn tiny_map(mode: CompactionMode) -> DynamicMap<u64, u64> {
    DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 2)
        .with_compaction_mode(mode)
        .with_policy(CompactionPolicy::tiered(1).with_merge_threads(1))
}

/// (a) The departed-reader release race: the last `Reader` dropping on
/// one thread while the writer mutates on another. In every
/// interleaving the snapshot the reader took must be a coherent
/// published prefix, and once the drop has been observed (at the
/// latest: the first mutation after `join`) the published cell must
/// have released its pinned copy of the map.
#[test]
fn reader_drop_vs_mutation_always_releases_published_cell() {
    let stats = Model::new()
        .check(|| {
            let mut map = tiny_map(CompactionMode::Inline);
            for k in 1..=4u64 {
                map.insert(k, k * 10);
            }
            let reader = map.reader();
            // Publish with the reader outstanding: the cell now pins a
            // full snapshot and `published_dirty` is set.
            map.compact_buffer();
            assert_ne!(map.debug_published_size(), (0, 0));

            let dropper = thread::spawn(move || {
                let snap = reader.snapshot();
                // The snapshot is the 4-key publication or a later one
                // (5 keys) — never torn, never stale beyond the writer.
                let n = snap.len();
                assert!(n == 4 || n == 5, "incoherent snapshot: {n} keys");
                for k in 1..=n as u64 {
                    assert_eq!(snap.get(&k), Some(&(k * 10)));
                }
                // `reader` drops here: the strong count falls while the
                // writer may be mid-mutation.
            });
            map.insert(5, 50);
            dropper.join().unwrap();

            // First mutation after the drop is certainly observed: the
            // release must have fired (either now or already during
            // `insert(5)`).
            map.insert(6, 60);
            assert_eq!(map.debug_published_size(), (0, 0));
            for k in 1..=6u64 {
                assert_eq!(map.get(&k), Some(&(k * 10)));
            }
        })
        .expect("no interleaving may leave the published cell pinned");
    assert!(stats.complete, "scenario must be exhaustively explored");
    assert!(stats.executions > 1, "scenario must actually interleave");
}

/// The race from the test above is real: asserting the release
/// *immediately* after the join — without the settling mutation — is
/// too strong, because when `insert(5)` ran before the drop it
/// republished and nothing has looked at the strong count since. The
/// checker must find that schedule, report it stably, and replay it.
/// This is the seeded-failure regression test for the checker itself.
#[test]
fn checker_finds_and_replays_the_stale_cell_schedule() {
    let scenario = || {
        let mut map = tiny_map(CompactionMode::Inline);
        for k in 1..=4u64 {
            map.insert(k, k * 10);
        }
        let reader = map.reader();
        map.compact_buffer();
        let dropper = thread::spawn(move || drop(reader));
        map.insert(5, 50);
        dropper.join().unwrap();
        // Deliberately too strong: no mutation after the join has
        // re-observed the reader count yet.
        assert_eq!(map.debug_published_size(), (0, 0), "cell still pinned");
    };
    let first = Model::new()
        .check(scenario)
        .expect_err("the stale-cell interleaving exists and the checker must find it");
    assert!(first.message.contains("cell still pinned"), "{first}");
    // Deterministic exploration: a second search finds the identical
    // schedule, and replaying it reproduces the identical failure.
    let second = Model::new().check(scenario).expect_err("same search");
    assert_eq!(first, second, "first failing schedule must be stable");
    let replayed = Model::new()
        .replay(&first.schedule, scenario)
        .expect_err("replay must reproduce the failure");
    assert_eq!(replayed.message, first.message);
}

/// (b) Background-merge install racing `quiesce`: sealed runs pile up
/// while a worker merges, `quiesce` joins and installs mid-churn, and
/// a concurrent reader snapshots somewhere in between. Post-conditions
/// in every interleaving: no sealed runs, no in-flight merge, and
/// answers identical to a `BTreeMap` oracle — compaction moves
/// versions, never answers.
#[test]
fn background_install_racing_quiesce_preserves_answers() {
    let model = Model {
        preemption_bound: Some(2),
        max_executions: 4_000,
    };
    let stats = model
        .check(|| {
            let mut map = tiny_map(CompactionMode::Background);
            let mut oracle = BTreeMap::new();
            for k in 1..=6u64 {
                map.insert(k, k * 100);
                oracle.insert(k, k * 100);
            }
            map.remove(&3);
            oracle.remove(&3);

            let reader = map.reader();
            let observer = thread::spawn(move || {
                let snap = reader.snapshot();
                // Whatever publication the snapshot caught, values are
                // never torn: a present key has the value written.
                for k in 1..=6u64 {
                    if let Some(v) = snap.get(&k) {
                        assert_eq!(*v, k * 100);
                    }
                }
            });
            map.quiesce();
            assert_eq!(map.sealed_runs(), 0, "quiesce leaves no sealed run");
            assert!(!map.compaction_in_flight(), "quiesce leaves no merge");
            observer.join().unwrap();

            assert_eq!(map.len(), oracle.len());
            for k in 1..=6u64 {
                assert_eq!(map.get(&k), oracle.get(&k), "key {k}");
            }
        })
        .expect("no interleaving may corrupt answers or leave work behind");
    assert!(stats.executions > 1, "scenario must actually interleave");
}

/// (c) An injected worker panic (armed through the `ist_loom`-only
/// `debug_panic_next_compaction` hook) must propagate to the writer at
/// the join point — in every interleaving — and must not poison the
/// map: the sources of the doomed merge are still resident, answers
/// are unchanged, and the next compaction succeeds.
#[test]
fn worker_panic_propagates_to_writer_in_every_interleaving() {
    let stats = Model::new()
        .check(|| {
            let mut map = tiny_map(CompactionMode::Background);
            for k in 1..=4u64 {
                map.insert(k, k + 7);
            }
            map.quiesce();
            map.debug_panic_next_compaction();
            map.insert(5, 12);
            // Seals and spawns the doomed worker.
            map.compact_buffer();
            let unwound = catch_unwind(AssertUnwindSafe(|| map.quiesce()))
                .expect_err("the worker panic must reach the writer");
            let msg = unwound
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert!(msg.contains("injected compaction worker panic"), "{msg}");

            // The map survives its worker: the merge sources were never
            // consumed, so answers are intact and the retried
            // compaction (panic hook disarmed) drains cleanly.
            for k in 1..=5u64 {
                assert_eq!(map.get(&k), Some(&(k + 7)));
            }
            map.quiesce();
            assert_eq!(map.sealed_runs(), 0);
            assert!(!map.compaction_in_flight());
            assert_eq!(map.len(), 5);
        })
        .expect("panic propagation must hold on every schedule");
    assert!(stats.executions >= 1);
}
