//! Cycle-leader construction algorithms (Chapter 3) on plain slices.
//!
//! These algorithms are built from the equidistant gather family in
//! `ist-gather`:
//!
//! * **vEB** (§3.1): one equidistant gather separates the top subtree `T₀`
//!   from the `r + 1` bottom subtrees, then all subtrees recurse in
//!   parallel. For odd `d` (where `r = 2l + 1 > l`), the array is split
//!   into two even halves, each gathered independently, and the two top
//!   halves are joined with one circular shift. Work `O(N log log N)`,
//!   depth `O(log log N)` (Propositions 7–8).
//! * **B-tree** (§3.2): the *extended* equidistant gather hoists all
//!   internal keys to the front, then the internal prefix recurses. Work
//!   `O(N log_{B+1} N)`, depth `O(log²_{B+1} N)` (Propositions 11–12).
//! * **BST** (§3.3): the B-tree algorithm with `B = 1`.
//!
//! These entry points are thin instantiations of the **single** generic
//! implementation in [`crate::algorithms`] with the
//! [`Ram`] backend; the PEM and GPU simulators drive
//! the very same code with their cost-model backends.

use crate::algorithms;
use ist_machine::Ram;

fn assert_pow2_size(n: usize, d: u32) {
    assert_eq!(n as u64, (1u64 << d) - 1, "need n = 2^d - 1");
}

fn assert_btree_size(n: usize, b: usize, m: u32) {
    assert!(b >= 1);
    assert_eq!(n as u64, (b as u64 + 1).pow(m) - 1, "need n = (B+1)^m - 1");
}

/// Sequential cycle-leader vEB construction. `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::cycle_leader::veb_seq;
/// let mut v: Vec<u32> = (1..=15).collect();
/// veb_seq(&mut v, 4);
/// assert_eq!(v, vec![8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15]);
/// ```
pub fn veb_seq<T: Send>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    algorithms::cycle_leader_veb(&mut Ram::seq(data), 0, d);
}

/// Parallel cycle-leader vEB construction (`O(N/P log log N)` time,
/// Propositions 7–8) — the fastest CPU algorithm in the paper's
/// evaluation.
pub fn veb_par<T: Send>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    algorithms::cycle_leader_veb(&mut Ram::par(data), 0, d);
}

/// Sequential cycle-leader B-tree construction.
/// `data.len() = (b+1)^m − 1`.
///
/// # Examples
/// ```
/// use ist_core::cycle_leader::btree_seq;
/// let mut v: Vec<u32> = (1..=8).collect(); // B = 2, m = 2
/// btree_seq(&mut v, 2, 2);
/// assert_eq!(v, vec![3, 6, 1, 2, 4, 5, 7, 8]);
/// ```
pub fn btree_seq<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    algorithms::cycle_leader_btree(&mut Ram::seq(data), b, m);
}

/// Parallel cycle-leader B-tree construction
/// (`O((N/P + log_{B+1} N) log_{B+1} N)` time, Propositions 11–12).
pub fn btree_par<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    algorithms::cycle_leader_btree(&mut Ram::par(data), b, m);
}

/// Sequential cycle-leader BST construction: the B-tree algorithm with
/// `B = 1` (§3.3). `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::cycle_leader::bst_seq;
/// let mut v: Vec<u32> = (1..=7).collect();
/// bst_seq(&mut v, 3);
/// assert_eq!(v, vec![4, 2, 6, 1, 3, 5, 7]);
/// ```
pub fn bst_seq<T: Send>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    algorithms::cycle_leader_btree(&mut Ram::seq(data), 1, d);
}

/// Parallel cycle-leader BST construction (`B = 1`).
pub fn bst_par<T: Send>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    algorithms::cycle_leader_btree(&mut Ram::par(data), 1, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::reference_permutation;
    use crate::Layout;

    #[test]
    fn veb_matches_oracle_even_and_odd() {
        for d in 1..=16u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Veb);
            let mut a = orig.clone();
            veb_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            veb_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn btree_matches_oracle() {
        for b in [1usize, 2, 3, 8] {
            for m in 1..=4u32 {
                let n = (b + 1).pow(m) - 1;
                if n > 1 << 15 {
                    continue;
                }
                let orig: Vec<u64> = (0..n as u64).collect();
                let expect = reference_permutation(&orig, Layout::Btree { b });
                let mut s = orig.clone();
                btree_seq(&mut s, b, m);
                assert_eq!(s, expect, "seq b={b} m={m}");
                let mut p = orig.clone();
                btree_par(&mut p, b, m);
                assert_eq!(p, expect, "par b={b} m={m}");
            }
        }
    }

    #[test]
    fn bst_matches_oracle() {
        for d in 1..=14u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Bst);
            let mut a = orig.clone();
            bst_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            bst_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn agrees_with_involution_family() {
        let d = 13u32;
        let n = (1usize << d) - 1;
        let orig: Vec<u64> = (0..n as u64).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        veb_seq(&mut a, d);
        crate::involution::veb_seq(&mut b, d);
        assert_eq!(a, b);
    }
}
