//! Cycle-leader construction algorithms (Chapter 3).
//!
//! These algorithms are built from the equidistant gather family in
//! `ist-gather`:
//!
//! * **vEB** (§3.1): one equidistant gather separates the top subtree `T₀`
//!   from the `r + 1` bottom subtrees, then all subtrees recurse in
//!   parallel. For odd `d` (where `r = 2l + 1 > l`), the array is split
//!   into two even halves, each gathered independently, and the two top
//!   halves are joined with one circular shift. Work `O(N log log N)`,
//!   depth `O(log log N)` (Propositions 7–8).
//! * **B-tree** (§3.2): the *extended* equidistant gather hoists all
//!   internal keys to the front, then the internal prefix recurses. Work
//!   `O(N log_{B+1} N)`, depth `O(log²_{B+1} N)` (Propositions 11–12).
//! * **BST** (§3.3): the B-tree algorithm with `B = 1`.

use ist_gather::{
    equidistant_gather, equidistant_gather_par, extended_equidistant_gather,
    extended_equidistant_gather_par,
};
use ist_layout::veb_split;
use ist_shuffle::rotate_right_par;

/// Below this length the `_par` drivers run sequentially.
const SEQ_CUTOFF: usize = 1 << 12;

fn assert_pow2_size(n: usize, d: u32) {
    assert_eq!(n as u64, (1u64 << d) - 1, "need n = 2^d - 1");
}

fn assert_btree_size(n: usize, b: usize, m: u32) {
    assert!(b >= 1);
    assert_eq!(n as u64, (b as u64 + 1).pow(m) - 1, "need n = (B+1)^m - 1");
}

/// Sequential cycle-leader vEB construction. `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::cycle_leader::veb_seq;
/// let mut v: Vec<u32> = (1..=15).collect();
/// veb_seq(&mut v, 4);
/// assert_eq!(v, vec![8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15]);
/// ```
pub fn veb_seq<T>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    veb_rec_seq(data, d);
}

fn veb_rec_seq<T>(data: &mut [T], d: u32) {
    if d <= 1 {
        return;
    }
    let (t, bb) = veb_split(d);
    let r = (1usize << t) - 1;
    let l = (1usize << bb) - 1;
    if t == bb {
        // Even number of levels: r = l, gather directly.
        equidistant_gather(data, r, l);
    } else {
        // Odd: r = 2l + 1. Gather each half (a perfect tree of d−1
        // levels with square shape l × l), then one circular shift joins
        // the two gathered tops around the median.
        let half = (data.len() - 1) / 2;
        equidistant_gather(&mut data[..half], l, l);
        equidistant_gather(&mut data[half + 1..], l, l);
        // Region [l, l + half + 1) = [rest_left | median | top_right];
        // shift the last l + 1 elements (median + right top) to its front.
        data[l..=l + half].rotate_right(l + 1);
    }
    let (top, rest) = data.split_at_mut(r);
    veb_rec_seq(top, t);
    for chunk in rest.chunks_exact_mut(l) {
        veb_rec_seq(chunk, bb);
    }
}

/// Parallel cycle-leader vEB construction (`O(N/P log log N)` time,
/// Propositions 7–8) — the fastest CPU algorithm in the paper's
/// evaluation.
pub fn veb_par<T: Send>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    veb_rec_par(data, d);
}

fn veb_rec_par<T: Send>(data: &mut [T], d: u32) {
    if data.len() < SEQ_CUTOFF {
        return veb_rec_seq(data, d);
    }
    let (t, bb) = veb_split(d);
    let r = (1usize << t) - 1;
    let l = (1usize << bb) - 1;
    if t == bb {
        equidistant_gather_par(data, r, l);
    } else {
        let half = (data.len() - 1) / 2;
        {
            let (left, right) = data.split_at_mut(half);
            rayon::join(
                || equidistant_gather_par(left, l, l),
                || equidistant_gather_par(&mut right[1..], l, l),
            );
        }
        rotate_right_par(&mut data[l..=l + half], l + 1);
    }
    let (top, rest) = data.split_at_mut(r);
    rayon::join(
        || veb_rec_par(top, t),
        || {
            use rayon::prelude::*;
            rest.par_chunks_exact_mut(l)
                .for_each(|chunk| veb_rec_par(chunk, bb));
        },
    );
}

/// Sequential cycle-leader B-tree construction.
/// `data.len() = (b+1)^m − 1`.
///
/// # Examples
/// ```
/// use ist_core::cycle_leader::btree_seq;
/// let mut v: Vec<u32> = (1..=8).collect(); // B = 2, m = 2
/// btree_seq(&mut v, 2, 2);
/// assert_eq!(v, vec![3, 6, 1, 2, 4, 5, 7, 8]);
/// ```
pub fn btree_seq<T>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    let k = b + 1;
    let mut mm = m;
    while mm >= 2 {
        let n_cur = k.pow(mm) - 1;
        // Hoist internal keys of the current prefix to its front; the
        // leaf nodes below settle into their final positions.
        extended_equidistant_gather(&mut data[..n_cur], b);
        mm -= 1;
    }
}

/// Parallel cycle-leader B-tree construction
/// (`O((N/P + log_{B+1} N) log_{B+1} N)` time, Propositions 11–12).
pub fn btree_par<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    let k = b + 1;
    let mut mm = m;
    while mm >= 2 {
        let n_cur = k.pow(mm) - 1;
        if n_cur < SEQ_CUTOFF {
            extended_equidistant_gather(&mut data[..n_cur], b);
        } else {
            extended_equidistant_gather_par(&mut data[..n_cur], b);
        }
        mm -= 1;
    }
}

/// Sequential cycle-leader BST construction: the B-tree algorithm with
/// `B = 1` (§3.3). `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::cycle_leader::bst_seq;
/// let mut v: Vec<u32> = (1..=7).collect();
/// bst_seq(&mut v, 3);
/// assert_eq!(v, vec![4, 2, 6, 1, 3, 5, 7]);
/// ```
pub fn bst_seq<T>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    btree_seq(data, 1, d);
}

/// Parallel cycle-leader BST construction (`B = 1`).
pub fn bst_par<T: Send>(data: &mut [T], d: u32) {
    assert_pow2_size(data.len(), d);
    btree_par(data, 1, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::reference_permutation;
    use crate::Layout;

    #[test]
    fn veb_matches_oracle_even_and_odd() {
        for d in 1..=16u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Veb);
            let mut a = orig.clone();
            veb_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            veb_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn btree_matches_oracle() {
        for b in [1usize, 2, 3, 8] {
            for m in 1..=4u32 {
                let n = (b + 1).pow(m) - 1;
                if n > 1 << 15 {
                    continue;
                }
                let orig: Vec<u64> = (0..n as u64).collect();
                let expect = reference_permutation(&orig, Layout::Btree { b });
                let mut s = orig.clone();
                btree_seq(&mut s, b, m);
                assert_eq!(s, expect, "seq b={b} m={m}");
                let mut p = orig.clone();
                btree_par(&mut p, b, m);
                assert_eq!(p, expect, "par b={b} m={m}");
            }
        }
    }

    #[test]
    fn bst_matches_oracle() {
        for d in 1..=14u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Bst);
            let mut a = orig.clone();
            bst_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            bst_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn agrees_with_involution_family() {
        let d = 13u32;
        let n = (1usize << d) - 1;
        let orig: Vec<u64> = (0..n as u64).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        veb_seq(&mut a, d);
        crate::involution::veb_seq(&mut b, d);
        assert_eq!(a, b);
    }
}
