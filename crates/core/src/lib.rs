//! # ist-core
//!
//! Parallel in-place construction of implicit search tree layouts — the
//! primary contribution of *Beyond Binary Search: Parallel In-Place
//! Construction of Implicit Search Tree Layouts* (Berney, 2018).
//!
//! Given an array sorted in ascending order, the algorithms here permute
//! it **in place** into one of three implicit layouts so that subsequent
//! searches are more cache-efficient than binary search:
//!
//! | Layout | Description | Query I/Os |
//! |---|---|---|
//! | [`Layout::Bst`] | level order of a complete binary search tree | `O(log(N/B))` |
//! | [`Layout::Btree`] | level order of a complete `(B+1)`-ary search tree | `Θ(log_B N)` |
//! | [`Layout::Veb`] | recursive van Emde Boas order (cache-oblivious) | `Θ(log_B N)` |
//!
//! Two algorithm families are implemented for every layout:
//!
//! * [`Algorithm::Involution`] — every constituent permutation is applied
//!   as a product of two involutions (digit reversals or modular-inverse
//!   `J` maps), i.e. two parallel rounds of disjoint swaps (Chapter 2);
//! * [`Algorithm::CycleLeader`] — the equidistant-gather based algorithms
//!   with explicitly enumerated disjoint cycles and better locality
//!   (Chapter 3).
//!
//! Arbitrary (non-perfect) sizes are handled per Chapter 5: the non-full
//! leaf level is first moved, in place, to the array's suffix; the
//! remaining elements form a perfect tree. The resulting format is
//! `[perfect layout | sorted overflow leaves]` (see
//! [`ist_layout::complete`]), which `ist-query` searches natively.
//!
//! Every algorithm is implemented **once**, in [`algorithms`], generic
//! over the [`Machine`] execution substrate: [`permute_in_place`] runs it
//! on the [`Ram`] backend, while `ist-pem-sim` and `ist-gpu-sim` run the
//! identical control flow on cost-model backends (PEM block I/Os and GPU
//! launches/transactions respectively). Use [`construct`] directly to
//! drive a custom backend.
//!
//! ## Quick start
//!
//! ```
//! use ist_core::{permute_in_place, Algorithm, Layout};
//!
//! let mut data: Vec<u64> = (0..(1 << 16) - 1).collect(); // sorted
//! permute_in_place(&mut data, Layout::Veb, Algorithm::CycleLeader).unwrap();
//! // `data` is now the vEB layout of the original sorted array.
//! ```

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod cycle_leader;
pub mod fich_baseline;
pub mod involution;
pub mod nonperfect;
pub mod oracle;

pub use algorithms::construct;
pub use fich_baseline::fich_baseline;
pub use ist_layout::LayoutKind;
pub use ist_machine::{GatherMode, IndexArith, Machine, Ram, Region};
pub use oracle::reference_permutation;

/// Target memory layout for [`permute_in_place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Level-order complete binary search tree.
    Bst,
    /// Level-order complete multiway tree with `B` keys per node.
    Btree {
        /// Keys per node; the paper uses the cache-line size in keys
        /// (`B = 8` for 64-byte lines and 64-bit keys on the CPU,
        /// `B = 32` on the GPU).
        b: usize,
    },
    /// van Emde Boas (recursive, cache-oblivious) order.
    Veb,
}

impl Layout {
    /// The corresponding runtime tag (drops the B-tree parameter).
    pub fn kind(self) -> LayoutKind {
        match self {
            Layout::Bst => LayoutKind::Bst,
            Layout::Btree { .. } => LayoutKind::Btree,
            Layout::Veb => LayoutKind::Veb,
        }
    }
}

/// Construction algorithm family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Product-of-involutions algorithms (Chapter 2): simple, trivially
    /// parallel rounds of disjoint swaps; poorer locality.
    Involution,
    /// Cycle-leader / equidistant-gather algorithms (Chapter 3): better
    /// spatial locality (I/O-efficient per Chapter 4).
    CycleLeader,
}

impl Algorithm {
    /// Both families, for exhaustive sweeps.
    pub const ALL: [Algorithm; 2] = [Algorithm::Involution, Algorithm::CycleLeader];

    /// Stable lowercase name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Involution => "involution",
            Algorithm::CycleLeader => "cycle_leader",
        }
    }
}

/// Errors reported by the construction entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// `Layout::Btree { b: 0 }` was requested.
    ZeroNodeCapacity,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::ZeroNodeCapacity => write!(f, "B-tree node capacity B must be at least 1"),
        }
    }
}

impl std::error::Error for Error {}

/// Permute sorted `data` in place into `layout`, **in parallel** (rayon).
///
/// Handles arbitrary input sizes; non-perfect trees use the Chapter-5
/// extension (perfect prefix + sorted overflow suffix). The permutation
/// uses `O(P log N)` extra space (recursion stacks), never a second
/// buffer.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// let mut v: Vec<u32> = (0..1000).collect();
/// permute_in_place(&mut v, Layout::Btree { b: 8 }, Algorithm::CycleLeader).unwrap();
/// ```
pub fn permute_in_place<T: Send>(
    data: &mut [T],
    layout: Layout,
    algorithm: Algorithm,
) -> Result<(), Error> {
    construct(&mut Ram::par(data), layout, algorithm)
}

/// Sequential variant of [`permute_in_place`] (used for the `P = 1`
/// baselines in the evaluation).
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place_seq, Algorithm, Layout};
/// let mut v: Vec<u32> = (0..127).collect();
/// permute_in_place_seq(&mut v, Layout::Bst, Algorithm::Involution).unwrap();
/// assert_eq!(v[0], 63); // root is the median
/// ```
pub fn permute_in_place_seq<T: Send>(
    data: &mut [T],
    layout: Layout,
    algorithm: Algorithm,
) -> Result<(), Error> {
    construct(&mut Ram::seq(data), layout, algorithm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oracle::reference_permutation;

    fn check(n: usize, layout: Layout) {
        let orig: Vec<u64> = (0..n as u64).collect();
        let expect = reference_permutation(&orig, layout);
        for algo in Algorithm::ALL {
            let mut seq = orig.clone();
            permute_in_place_seq(&mut seq, layout, algo).unwrap();
            assert_eq!(seq, expect, "seq n={n} layout={layout:?} algo={algo:?}");
            let mut par = orig.clone();
            permute_in_place(&mut par, layout, algo).unwrap();
            assert_eq!(par, expect, "par n={n} layout={layout:?} algo={algo:?}");
        }
    }

    #[test]
    fn perfect_bst_sizes() {
        for d in 1..=14u32 {
            check((1 << d) - 1, Layout::Bst);
        }
    }

    #[test]
    fn perfect_veb_sizes() {
        for d in 1..=14u32 {
            check((1 << d) - 1, Layout::Veb);
        }
    }

    #[test]
    fn perfect_btree_sizes() {
        for b in [1usize, 2, 3, 7] {
            for m in 1..=4u32 {
                let n = (b + 1).pow(m) - 1;
                if n <= 1 << 14 {
                    check(n, Layout::Btree { b });
                }
            }
        }
    }

    #[test]
    fn nonperfect_sizes() {
        for n in [2usize, 4, 5, 6, 10, 100, 1000, 4095, 4096, 5000] {
            check(n, Layout::Bst);
            check(n, Layout::Veb);
            check(n, Layout::Btree { b: 3 });
            check(n, Layout::Btree { b: 8 });
        }
    }

    #[test]
    fn tiny_inputs() {
        for n in 0..=3usize {
            check(n, Layout::Bst);
            check(n, Layout::Veb);
            check(n, Layout::Btree { b: 2 });
        }
    }

    #[test]
    fn rejects_zero_b() {
        let mut v = vec![1u8, 2, 3];
        assert_eq!(
            permute_in_place(&mut v, Layout::Btree { b: 0 }, Algorithm::Involution),
            Err(Error::ZeroNodeCapacity)
        );
    }

    #[test]
    fn large_parallel_all_layouts() {
        let n = (1 << 18) - 1;
        check(n, Layout::Bst);
        check(n, Layout::Veb);
        check(n, Layout::Btree { b: 8 });
    }
}
