//! Out-of-place reference permutation — the oracle every in-place
//! algorithm is validated against.
//!
//! This is the trivial `A[i] → B[π(i)]` construction the paper cites as
//! the non-in-place baseline; `π` comes from the closed-form position maps
//! in `ist-layout` (including the complete-tree extension).

use crate::Layout;
use ist_layout::complete::BtreeCompleteShape;
use ist_layout::{bst_pos, veb_pos, CompleteShape};

/// Compute the layout permutation of sorted `data` **out of place**.
///
/// Works for any input size (non-perfect trees use the
/// `[perfect | overflow]` format of [`ist_layout::complete`]).
///
/// # Examples
/// ```
/// use ist_core::{reference_permutation, Layout};
/// let sorted: Vec<u32> = (1..=15).collect();
/// let veb = reference_permutation(&sorted, Layout::Veb);
/// assert_eq!(veb, vec![8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15]);
/// ```
pub fn reference_permutation<T: Clone>(data: &[T], layout: Layout) -> Vec<T> {
    let n = data.len();
    if n <= 1 {
        return data.to_vec();
    }
    let pi: Box<dyn Fn(usize) -> usize> = match layout {
        Layout::Bst => {
            let shape = CompleteShape::new(n);
            Box::new(move |i| shape.pos(i, bst_pos))
        }
        Layout::Veb => {
            let shape = CompleteShape::new(n);
            Box::new(move |i| shape.pos(i, veb_pos))
        }
        Layout::Btree { b } => {
            assert!(b >= 1, "B must be positive");
            let shape = BtreeCompleteShape::new(n, b);
            Box::new(move |i| shape.pos(i))
        }
    };
    ist_perm::apply_out_of_place(data, pi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bst_small() {
        let v: Vec<u32> = (1..=7).collect();
        assert_eq!(
            reference_permutation(&v, Layout::Bst),
            vec![4, 2, 6, 1, 3, 5, 7]
        );
    }

    #[test]
    fn btree_figure_1_2() {
        let v: Vec<u32> = (1..=26).collect();
        let out = reference_permutation(&v, Layout::Btree { b: 2 });
        assert_eq!(&out[..8], &[9, 18, 3, 6, 12, 15, 21, 24]);
        assert_eq!(&out[8..10], &[1, 2]);
    }

    #[test]
    fn nonperfect_has_sorted_overflow_suffix() {
        let n = 100usize;
        let v: Vec<u32> = (0..n as u32).collect();
        let out = reference_permutation(&v, Layout::Bst);
        let shape = CompleteShape::new(n);
        let i = shape.full_count();
        let suffix = &out[i..];
        assert!(suffix.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(suffix.len(), shape.overflow());
    }
}
