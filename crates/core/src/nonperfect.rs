//! Extensions to non-perfect (complete) trees — Chapter 5.
//!
//! Sorted input of arbitrary size forms a complete tree whose last level
//! holds `L` *overflow* leaves. Construction first moves those leaves, in
//! place, to the array's suffix, leaving the `I` full-level elements
//! sorted in the prefix; the perfect-tree algorithms then run on the
//! prefix. The resulting array format is
//!
//! ```text
//! [ perfect layout of I elements | L overflow leaves, sorted ]
//! ```
//!
//! which is exactly what [`ist_layout::complete`] describes and what
//! `ist-query` searches (on falling off the perfect tree at in-order gap
//! `g`, the query probes the overflow suffix).
//!
//! The stripping passes themselves are implemented once, generically, in
//! [`crate::algorithms`] (so the PEM and GPU cost backends replay them
//! too); this module instantiates them on plain slices.
//!
//! **Documented deviation from the paper:** for the vEB layout the paper
//! re-interleaves overflow leaves into the recursive bottom subtrees so
//! that the final array is a pure vEB layout of the complete tree. We
//! instead keep the `[perfect | overflow]` format for all three layouts.
//! This preserves in-placeness, the asymptotic work/depth bounds (the
//! stripping pass matches the paper's), and query correctness, at the
//! cost of one extra cache line touched per query that ends in the
//! suffix. DESIGN.md records this substitution.

use crate::algorithms;
use ist_layout::{complete::BtreeCompleteShape, CompleteShape};
use ist_machine::Ram;

/// Move the `L` overflow leaves of a complete **binary** tree to the
/// array suffix, leaving the `I` full elements sorted in the prefix.
///
/// In sorted order the overflow leaves sit at even positions
/// `0, 2, …, 2(L−1)`, interleaved with their parents: a 2-way un-shuffle
/// of the first `2L` elements separates `[leaves | parents]`, and one
/// circular shift of the whole array moves the leaves to the back.
/// `O(N)` work, `O(log N)`-free depth (two involution rounds + one
/// shift).
pub fn strip_overflow_binary<T: Send>(data: &mut [T], shape: CompleteShape, par: bool) {
    debug_assert_eq!(data.len(), shape.len());
    algorithms::strip_overflow_binary(&mut Ram::with_mode(data, par), shape);
}

/// Move the `L` overflow leaves of a complete **B-tree** to the array
/// suffix.
///
/// The overflow region interleaves `q = ⌊L/B⌋` full leaf nodes with their
/// parents' keys (`[B leaves | parent] × q`), followed by `s = L mod B`
/// leftover leaves. A `(B+1)`-way un-shuffle gathers the parents behind
/// the leaf-slot lists, a `B`-way shuffle regroups the leaves into node
/// order, and two circular shifts move `[leaves | partial]` to the back.
pub fn strip_overflow_btree<T: Send>(data: &mut [T], shape: BtreeCompleteShape, par: bool) {
    debug_assert_eq!(data.len(), shape.len());
    algorithms::strip_overflow_btree(&mut Ram::with_mode(data, par), shape);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference: stable partition into [full elements | overflow leaves].
    fn reference_binary(n: usize) -> Vec<usize> {
        let shape = CompleteShape::new(n);
        let mut out: Vec<usize> = (0..n).filter(|&i| !shape.is_overflow(i)).collect();
        out.extend((0..n).filter(|&i| shape.is_overflow(i)));
        out
    }

    fn reference_btree(n: usize, b: usize) -> Vec<usize> {
        let shape = BtreeCompleteShape::new(n, b);
        let mut out: Vec<usize> = (0..n).filter(|&i| !shape.is_overflow(i)).collect();
        out.extend((0..n).filter(|&i| shape.is_overflow(i)));
        out
    }

    #[test]
    fn binary_all_sizes() {
        for n in 1..700usize {
            let shape = CompleteShape::new(n);
            let expect = reference_binary(n);
            let mut a: Vec<usize> = (0..n).collect();
            strip_overflow_binary(&mut a, shape, false);
            assert_eq!(a, expect, "seq n={n}");
            let mut p: Vec<usize> = (0..n).collect();
            strip_overflow_binary(&mut p, shape, true);
            assert_eq!(p, expect, "par n={n}");
        }
    }

    #[test]
    fn btree_all_sizes() {
        for b in [1usize, 2, 3, 8] {
            for n in 1..400usize {
                let shape = BtreeCompleteShape::new(n, b);
                let expect = reference_btree(n, b);
                let mut a: Vec<usize> = (0..n).collect();
                strip_overflow_btree(&mut a, shape, false);
                assert_eq!(a, expect, "seq n={n} b={b}");
                let mut p: Vec<usize> = (0..n).collect();
                strip_overflow_btree(&mut p, shape, true);
                assert_eq!(p, expect, "par n={n} b={b}");
            }
        }
    }

    #[test]
    fn suffix_is_sorted_and_prefix_is_sorted() {
        let n = 12345usize;
        let shape = CompleteShape::new(n);
        let mut v: Vec<usize> = (0..n).collect();
        strip_overflow_binary(&mut v, shape, true);
        let i = shape.full_count();
        assert!(v[..i].windows(2).all(|w| w[0] < w[1]));
        assert!(v[i..].windows(2).all(|w| w[0] < w[1]));
    }
}
