//! Involution-based construction algorithms (Chapter 2) on plain slices.
//!
//! Every permutation applied here is the product of two involutions, so
//! the whole construction is a short sequence of parallel rounds of
//! disjoint swaps:
//!
//! * **BST** (§2.1, after Fich et al.): on 1-indexed positions,
//!   `π = σ₂ ∘ σ₁` with `σ₁ = rev₂(d, ·)` (reverse all `d` bits) and
//!   `σ₂(p) = rev₂(⌊log₂ p⌋, p)` (reverse the bits below the leading
//!   one). Exactly two rounds, `O(N · T_REV₂)` work, `O(T_REV₂)` depth.
//! * **B-tree** (§2.2, after Yang et al.): per level, a `(B+1)`-way
//!   perfect *un*-shuffle pulls internal keys to the front (digit-reversal
//!   involutions `Ξ₁` on the padded size `(B+1)^m`), a `B`-way perfect
//!   shuffle (`J` involutions `Ξ₂`) regroups the leaf lists into leaf
//!   nodes, and the algorithm recurses on the internal prefix.
//! * **vEB** (§2.3): one B-tree level step with `B = 2^⌊d/2⌋ − 1`
//!   separates the top subtree from the bottom subtrees, then both sides
//!   recurse. The padded un-shuffle uses `Ξ₁` when the padded size is a
//!   power of the deck count and `Ξ₂` otherwise.
//!
//! These entry points are thin instantiations of the **single** generic
//! implementation in [`crate::algorithms`] with the
//! [`Ram`] backend; the PEM and GPU simulators drive
//! the very same code with their cost-model backends.

use crate::algorithms;
use ist_machine::Ram;

/// Sequential involution-based BST construction. `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::involution::bst_seq;
/// let mut v: Vec<u32> = (1..=7).collect();
/// bst_seq(&mut v, 3);
/// assert_eq!(v, vec![4, 2, 6, 1, 3, 5, 7]);
/// ```
pub fn bst_seq<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    algorithms::involution_bst(&mut Ram::seq(data), d);
}

/// Parallel involution-based BST construction: the same two rounds, each
/// a parallel pass of disjoint swaps (`O(N/P · T_REV₂)` time on `P`
/// processors).
pub fn bst_par<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    algorithms::involution_bst(&mut Ram::par(data), d);
}

/// Sequential involution-based B-tree construction.
/// `data.len() = (b+1)^m − 1`.
///
/// # Examples
/// ```
/// use ist_core::involution::btree_seq;
/// let mut v: Vec<u32> = (1..=8).collect(); // B = 2, m = 2
/// btree_seq(&mut v, 2, 2);
/// assert_eq!(v, vec![3, 6, 1, 2, 4, 5, 7, 8]);
/// ```
pub fn btree_seq<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    algorithms::involution_btree(&mut Ram::seq(data), b, m);
}

/// Parallel involution-based B-tree construction
/// (`O((N/P + log_{B+1} N) log N)` time, Propositions 2–3).
pub fn btree_par<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    algorithms::involution_btree(&mut Ram::par(data), b, m);
}

/// Sequential involution-based vEB construction. `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::involution::veb_seq;
/// let mut v: Vec<u32> = (1..=15).collect();
/// veb_seq(&mut v, 4);
/// assert_eq!(v, vec![8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15]);
/// ```
pub fn veb_seq<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    algorithms::involution_veb(&mut Ram::seq(data), 0, d);
}

/// Parallel involution-based vEB construction (`O(N/P log N)` time,
/// Propositions 4–5).
pub fn veb_par<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    algorithms::involution_veb(&mut Ram::par(data), 0, d);
}

fn assert_bst_size(n: usize, d: u32) {
    assert_eq!(n as u64, (1u64 << d) - 1, "need n = 2^d - 1");
}

fn assert_btree_size(n: usize, b: usize, m: u32) {
    assert!(b >= 1);
    assert_eq!(n as u64, (b as u64 + 1).pow(m) - 1, "need n = (B+1)^m - 1");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::reference_permutation;
    use crate::Layout;

    #[test]
    fn bst_matches_oracle() {
        for d in 1..=15u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Bst);
            let mut a = orig.clone();
            bst_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            bst_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn btree_matches_oracle() {
        for b in [1usize, 2, 3, 8] {
            for m in 1..=4u32 {
                let n = (b + 1).pow(m) - 1;
                if n > 1 << 15 {
                    continue;
                }
                let orig: Vec<u64> = (0..n as u64).collect();
                let expect = reference_permutation(&orig, Layout::Btree { b });
                let mut s = orig.clone();
                btree_seq(&mut s, b, m);
                assert_eq!(s, expect, "seq b={b} m={m}");
                let mut p = orig.clone();
                btree_par(&mut p, b, m);
                assert_eq!(p, expect, "par b={b} m={m}");
            }
        }
    }

    #[test]
    fn veb_matches_oracle() {
        for d in 1..=16u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Veb);
            let mut a = orig.clone();
            veb_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            veb_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }
}
