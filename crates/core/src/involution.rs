//! Involution-based construction algorithms (Chapter 2).
//!
//! Every permutation applied here is the product of two involutions, so
//! the whole construction is a short sequence of parallel rounds of
//! disjoint swaps:
//!
//! * **BST** (§2.1, after Fich et al.): on 1-indexed positions,
//!   `π = σ₂ ∘ σ₁` with `σ₁ = rev₂(d, ·)` (reverse all `d` bits) and
//!   `σ₂(p) = rev₂(⌊log₂ p⌋, p)` (reverse the bits below the leading
//!   one). Exactly two rounds, `O(N · T_REV₂)` work, `O(T_REV₂)` depth.
//! * **B-tree** (§2.2, after Yang et al.): per level, a `(B+1)`-way
//!   perfect *un*-shuffle pulls internal keys to the front (digit-reversal
//!   involutions `Ξ₁` on the padded size `(B+1)^m`), a `B`-way perfect
//!   shuffle (`J` involutions `Ξ₂`) regroups the leaf lists into leaf
//!   nodes, and the algorithm recurses on the internal prefix.
//! * **vEB** (§2.3): one B-tree level step with `B = 2^⌊d/2⌋ − 1`
//!   separates the top subtree from the bottom subtrees, then both sides
//!   recurse. The padded un-shuffle uses `Ξ₁` when the padded size is a
//!   power of the deck count and `Ξ₂` otherwise.
//!
//! The "padded" trick: an un-shuffle of `N = k^m − 1` elements simulates
//! 1-indexing by acting on `k^m` positions with position `0` as a phantom
//! fixed point (all involutions used here fix `0`).

use ist_bits::{ilog2_floor, rev2, rev_k};
use ist_layout::veb_split;
use ist_perm::{apply_involution, apply_involution_par};
use ist_shuffle::{j_involution, shuffle_mod, shuffle_mod_par};

/// Below this length the `_par` drivers run sequentially.
const SEQ_CUTOFF: usize = 1 << 12;

fn assert_bst_size(n: usize, d: u32) {
    assert_eq!(n as u64, (1u64 << d) - 1, "need n = 2^d - 1");
}

/// Sequential involution-based BST construction. `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::involution::bst_seq;
/// let mut v: Vec<u32> = (1..=7).collect();
/// bst_seq(&mut v, 3);
/// assert_eq!(v, vec![4, 2, 6, 1, 3, 5, 7]);
/// ```
pub fn bst_seq<T>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    apply_involution(data, |s| (rev2(d, (s + 1) as u64) - 1) as usize);
    apply_involution(data, |s| {
        let p = (s + 1) as u64;
        (rev2(ilog2_floor(p), p) - 1) as usize
    });
}

/// Parallel involution-based BST construction: the same two rounds, each
/// a parallel pass of disjoint swaps (`O(N/P · T_REV₂)` time on `P`
/// processors).
pub fn bst_par<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    if data.len() < SEQ_CUTOFF {
        return bst_seq(data, d);
    }
    apply_involution_par(data, |s| (rev2(d, (s + 1) as u64) - 1) as usize);
    apply_involution_par(data, |s| {
        let p = (s + 1) as u64;
        (rev2(ilog2_floor(p), p) - 1) as usize
    });
}

/// One padded `(k)`-way un-shuffle of `data` (length `k^m − 1`) using the
/// digit-reversal involutions `Ξ₁`: apply `rev_k(m)` then `rev_k(m−1)` on
/// 1-indexed (padded) positions. Internal keys land in the prefix.
fn padded_unshuffle_pow<T>(data: &mut [T], k: usize, m: u32, par: bool)
where
    T: Send,
{
    let kk = k as u64;
    if par {
        apply_involution_par(data, |s| (rev_k(kk, m, (s + 1) as u64) - 1) as usize);
        apply_involution_par(data, |s| (rev_k(kk, m - 1, (s + 1) as u64) - 1) as usize);
    } else {
        apply_involution(data, |s| (rev_k(kk, m, (s + 1) as u64) - 1) as usize);
        apply_involution(data, |s| (rev_k(kk, m - 1, (s + 1) as u64) - 1) as usize);
    }
}

/// One padded `k`-way un-shuffle using the `J` involutions `Ξ₂` (works for
/// any padded size `K` divisible by `k`): apply `J_k` then `J_1` on padded
/// positions, modulus `K − 1`.
fn padded_unshuffle_mod<T>(data: &mut [T], k: usize, par: bool)
where
    T: Send,
{
    let kk = k as u64;
    let nm1 = data.len() as u64; // padded size K = len + 1, modulus K - 1 = len
    if par {
        apply_involution_par(data, |s| (j_involution(kk, nm1, (s + 1) as u64) - 1) as usize);
        apply_involution_par(data, |s| (j_involution(1, nm1, (s + 1) as u64) - 1) as usize);
    } else {
        apply_involution(data, |s| (j_involution(kk, nm1, (s + 1) as u64) - 1) as usize);
        apply_involution(data, |s| (j_involution(1, nm1, (s + 1) as u64) - 1) as usize);
    }
}

fn assert_btree_size(n: usize, b: usize, m: u32) {
    assert!(b >= 1);
    assert_eq!(n as u64, (b as u64 + 1).pow(m) - 1, "need n = (B+1)^m - 1");
}

fn btree_impl<T: Send>(data: &mut [T], b: usize, m: u32, par: bool) {
    let k = b + 1;
    let mut mm = m;
    while mm >= 2 {
        let n_cur = k.pow(mm) - 1;
        let prefix = &mut data[..n_cur];
        let use_par = par && n_cur >= SEQ_CUTOFF;
        // (1) (B+1)-way un-shuffle: internal keys to the front, leaf-slot
        // lists S₀..S_{B−1} laid out after them.
        padded_unshuffle_pow(prefix, k, mm, use_par);
        // (2) B-way shuffle of the leaf region: interleave the slot lists
        // back into per-node groups of B consecutive keys.
        let r = k.pow(mm - 1) - 1;
        if b >= 2 {
            if use_par {
                shuffle_mod_par(&mut prefix[r..], b);
            } else {
                shuffle_mod(&mut prefix[r..], b);
            }
        }
        // (3) recurse on the internal prefix (iteratively).
        mm -= 1;
    }
}

/// Sequential involution-based B-tree construction.
/// `data.len() = (b+1)^m − 1`.
///
/// # Examples
/// ```
/// use ist_core::involution::btree_seq;
/// let mut v: Vec<u32> = (1..=8).collect(); // B = 2, m = 2
/// btree_seq(&mut v, 2, 2);
/// assert_eq!(v, vec![3, 6, 1, 2, 4, 5, 7, 8]);
/// ```
pub fn btree_seq<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    btree_impl(data, b, m, false);
}

/// Parallel involution-based B-tree construction
/// (`O((N/P + log_{B+1} N) log N)` time, Propositions 2–3).
pub fn btree_par<T: Send>(data: &mut [T], b: usize, m: u32) {
    assert_btree_size(data.len(), b, m);
    btree_impl(data, b, m, true);
}

/// Sequential involution-based vEB construction. `data.len() = 2^d − 1`.
///
/// # Examples
/// ```
/// use ist_core::involution::veb_seq;
/// let mut v: Vec<u32> = (1..=15).collect();
/// veb_seq(&mut v, 4);
/// assert_eq!(v, vec![8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15]);
/// ```
pub fn veb_seq<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    veb_impl(data, d, false);
}

/// Parallel involution-based vEB construction (`O(N/P log N)` time,
/// Propositions 4–5).
pub fn veb_par<T: Send>(data: &mut [T], d: u32) {
    assert_bst_size(data.len(), d);
    veb_impl(data, d, true);
}

fn veb_impl<T: Send>(data: &mut [T], d: u32, par: bool) {
    if d <= 1 {
        return;
    }
    let (t, bb) = veb_split(d);
    let k = 1usize << bb; // separation stride: one top key every 2^b keys
    let r = (1usize << t) - 1;
    let l = k - 1;
    let use_par = par && data.len() >= SEQ_CUTOFF;

    // Separate top keys (every k-th) to the front — one B-tree level step
    // with B = l. Padded size 2^d is a power of k iff bb | d.
    if d % bb == 0 {
        padded_unshuffle_pow(data, k, d / bb, use_par);
    } else {
        padded_unshuffle_mod(data, k, use_par);
    }
    // Interleave the l leaf-slot lists into bottom subtrees of l
    // consecutive keys each.
    if l >= 2 {
        if use_par {
            shuffle_mod_par(&mut data[r..], l);
        } else {
            shuffle_mod(&mut data[r..], l);
        }
    }
    // Recurse on the top subtree and every bottom subtree.
    let (top, rest) = data.split_at_mut(r);
    if use_par {
        rayon::join(
            || veb_impl(top, t, true),
            || {
                use rayon::prelude::*;
                rest.par_chunks_exact_mut(l)
                    .for_each(|chunk| veb_impl(chunk, bb, true));
            },
        );
    } else {
        veb_impl(top, t, false);
        for chunk in rest.chunks_exact_mut(l) {
            veb_impl(chunk, bb, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::reference_permutation;
    use crate::Layout;

    #[test]
    fn bst_matches_oracle() {
        for d in 1..=15u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Bst);
            let mut a = orig.clone();
            bst_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            bst_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn btree_matches_oracle() {
        for b in [1usize, 2, 3, 8] {
            for m in 1..=4u32 {
                let n = (b + 1).pow(m) - 1;
                if n > 1 << 15 {
                    continue;
                }
                let orig: Vec<u64> = (0..n as u64).collect();
                let expect = reference_permutation(&orig, Layout::Btree { b });
                let mut s = orig.clone();
                btree_seq(&mut s, b, m);
                assert_eq!(s, expect, "seq b={b} m={m}");
                let mut p = orig.clone();
                btree_par(&mut p, b, m);
                assert_eq!(p, expect, "par b={b} m={m}");
            }
        }
    }

    #[test]
    fn veb_matches_oracle() {
        for d in 1..=16u32 {
            let n = (1usize << d) - 1;
            let orig: Vec<u64> = (0..n as u64).collect();
            let expect = reference_permutation(&orig, Layout::Veb);
            let mut a = orig.clone();
            veb_seq(&mut a, d);
            assert_eq!(a, expect, "seq d={d}");
            let mut b = orig.clone();
            veb_par(&mut b, d);
            assert_eq!(b, expect, "par d={d}");
        }
    }

    #[test]
    fn padded_unshuffle_variants_agree() {
        // Ξ₁ and Ξ₂ must implement the same permutation on power sizes.
        let k = 4usize;
        let m = 5u32;
        let n = k.pow(m) - 1;
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b = a.clone();
        padded_unshuffle_pow(&mut a, k, m, false);
        padded_unshuffle_mod(&mut b, k, false);
        assert_eq!(a, b);
        // And internal keys (every k-th, 1-indexed) land sorted in front.
        for (idx, &v) in a[..k.pow(m - 1) - 1].iter().enumerate() {
            assert_eq!(v as usize, (idx + 1) * k - 1);
        }
    }
}
