//! The six construction algorithms, written **once**, generic over
//! [`Machine`].
//!
//! Every algorithm below is expressed in the primitives the paper
//! analyzes — involution swap rounds (Chapter 2), equidistant gathers
//! (Chapter 3), circular shifts, and recursive subtree tasks — so the
//! same control flow drives:
//!
//! * the production [`Ram`] backend (what
//!   [`crate::permute_in_place`] uses),
//! * the PEM I/O counter (`ist-pem-sim`'s `TrackedArray`), and
//! * the SIMT cost model (`ist-gpu-sim`'s `Gpu`).
//!
//! Earlier revisions carried three hand-synchronized copies of these
//! algorithms (production + two instrumented replays); the simulators'
//! claim to measure "the real algorithms" now holds by construction.
//! Backend outputs are bit-identical — `tests/machine_equivalence.rs`
//! asserts every (layout, algorithm, backend) combination against
//! [`crate::reference_permutation`], for perfect and non-perfect sizes.
//!
//! All indices are global to the machine's array; recursive algorithms
//! carry explicit region offsets (`lo`) so cost backends observe true
//! addresses.

use ist_bits::{ilog2_floor, rev2, rev_k};
use ist_layout::{complete::BtreeCompleteShape, veb_split, CompleteShape};
use ist_machine::{GatherMode, IndexArith, Machine, Ram, Region};
use ist_shuffle::j_involution;

use crate::{Algorithm, Error, Layout};

/// Permute the machine's sorted array in place into `layout` using
/// `algorithm`. Handles arbitrary sizes (non-perfect trees use the
/// Chapter-5 `[perfect | overflow]` extension) on **every** backend.
///
/// This is the single entry point behind [`crate::permute_in_place`],
/// `ist-pem-sim`'s kernels and `ist-gpu-sim`'s kernels.
pub fn construct<M: Machine>(m: &mut M, layout: Layout, algorithm: Algorithm) -> Result<(), Error> {
    if matches!(layout, Layout::Btree { b: 0 }) {
        return Err(Error::ZeroNodeCapacity);
    }
    let n = m.len();
    if n <= 1 {
        return Ok(());
    }
    match layout {
        Layout::Bst | Layout::Veb => {
            let shape = CompleteShape::new(n);
            if !shape.is_perfect() {
                strip_overflow_binary(m, shape);
            }
            let d = shape.full_levels();
            match (layout, algorithm) {
                (Layout::Bst, Algorithm::Involution) => involution_bst(m, d),
                (Layout::Bst, Algorithm::CycleLeader) => cycle_leader_btree(m, 1, d),
                (Layout::Veb, Algorithm::Involution) => involution_veb(m, 0, d),
                (Layout::Veb, Algorithm::CycleLeader) => cycle_leader_veb(m, 0, d),
                _ => unreachable!(),
            }
        }
        Layout::Btree { b } => {
            let shape = BtreeCompleteShape::new(n, b);
            if !shape.is_perfect() {
                strip_overflow_btree(m, shape);
            }
            let levels = shape.full_node_levels();
            match algorithm {
                Algorithm::Involution => involution_btree(m, b, levels),
                Algorithm::CycleLeader => cycle_leader_btree(m, b, levels),
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Shared permutation rounds (the Ξ₁ / Ξ₂ factorizations of Yang et al.)
// ---------------------------------------------------------------------

/// One padded `k`-way un-shuffle of `[lo, lo + k^digits − 1)` via the
/// digit-reversal involutions Ξ₁ (`rev_k(digits)` then `rev_k(digits−1)`
/// on 1-indexed padded positions). Internal keys land in the prefix.
fn padded_unshuffle_pow<M: Machine>(m: &mut M, lo: usize, k: usize, digits: u32) {
    let n_cur = k.pow(digits) - 1;
    let kk = k as u64;
    m.involution_round(
        lo,
        lo + n_cur,
        IndexArith::RevK { k: kk, m: digits },
        move |s| lo + (rev_k(kk, digits, (s - lo + 1) as u64) - 1) as usize,
    );
    m.involution_round(
        lo,
        lo + n_cur,
        IndexArith::RevK {
            k: kk,
            m: digits - 1,
        },
        move |s| lo + (rev_k(kk, digits - 1, (s - lo + 1) as u64) - 1) as usize,
    );
}

/// One padded `k`-way un-shuffle of `[lo, lo + len)` via the `J`
/// involutions Ξ₂ (`J_k` then `J_1` on 1-indexed padded positions,
/// modulus `len`); works for any padded size `len + 1` divisible by `k`.
fn padded_unshuffle_mod<M: Machine>(m: &mut M, lo: usize, len: usize, k: usize) {
    let nm1 = len as u64; // padded size K = len + 1, modulus K − 1 = len
    let kk = k as u64;
    m.involution_round(lo, lo + len, IndexArith::Jmap { len }, move |s| {
        lo + (j_involution(kk, nm1, (s - lo + 1) as u64) - 1) as usize
    });
    m.involution_round(lo, lo + len, IndexArith::Jmap { len }, move |s| {
        lo + (j_involution(1, nm1, (s - lo + 1) as u64) - 1) as usize
    });
}

/// `k`-way perfect shuffle of `[lo, hi)` via Ξ₂ (`J_1` then `J_k` on
/// 0-indexed positions, modulus `hi − lo − 1`).
fn shuffle_mod_rounds<M: Machine>(m: &mut M, lo: usize, hi: usize, k: usize) {
    let len = hi - lo;
    if len <= 1 || k <= 1 {
        return;
    }
    debug_assert_eq!(len % k, 0);
    let nm1 = (len - 1) as u64;
    let kk = k as u64;
    m.involution_round(lo, hi, IndexArith::Jmap { len }, move |s| {
        lo + j_involution(1, nm1, (s - lo) as u64) as usize
    });
    m.involution_round(lo, hi, IndexArith::Jmap { len }, move |s| {
        lo + j_involution(kk, nm1, (s - lo) as u64) as usize
    });
}

/// `k`-way perfect **un**-shuffle of `[lo, hi)` (inverse of
/// [`shuffle_mod_rounds`]: `J_k` then `J_1`).
fn unshuffle_mod_rounds<M: Machine>(m: &mut M, lo: usize, hi: usize, k: usize) {
    let len = hi - lo;
    if len <= 1 || k <= 1 {
        return;
    }
    debug_assert_eq!(len % k, 0);
    let nm1 = (len - 1) as u64;
    let kk = k as u64;
    m.involution_round(lo, hi, IndexArith::Jmap { len }, move |s| {
        lo + j_involution(kk, nm1, (s - lo) as u64) as usize
    });
    m.involution_round(lo, hi, IndexArith::Jmap { len }, move |s| {
        lo + j_involution(1, nm1, (s - lo) as u64) as usize
    });
}

// ---------------------------------------------------------------------
// Chapter 2: involution-based constructions
// ---------------------------------------------------------------------

/// Involution-based BST construction (§2.1, after Fich et al.): exactly
/// two rounds of disjoint swaps over `[0, 2^d − 1)`.
pub fn involution_bst<M: Machine>(m: &mut M, d: u32) {
    let n = (1usize << d) - 1;
    m.involution_round(0, n, IndexArith::Rev2 { d }, move |s| {
        (rev2(d, (s + 1) as u64) - 1) as usize
    });
    m.involution_round(0, n, IndexArith::Rev2 { d }, move |s| {
        let p = (s + 1) as u64;
        (rev2(ilog2_floor(p), p) - 1) as usize
    });
}

/// Involution-based B-tree construction (§2.2, after Yang et al.):
/// per level, a padded `(B+1)`-way un-shuffle pulls internal keys to the
/// front, a `B`-way shuffle regroups the leaf lists into leaf nodes, and
/// the loop recurses on the internal prefix. `levels` is the node height
/// `m` with `(b+1)^m − 1` total keys.
pub fn involution_btree<M: Machine>(m: &mut M, b: usize, levels: u32) {
    let k = b + 1;
    let mut mm = levels;
    while mm >= 2 {
        let n_cur = k.pow(mm) - 1;
        padded_unshuffle_pow(m, 0, k, mm);
        let r = k.pow(mm - 1) - 1;
        if b >= 2 {
            shuffle_mod_rounds(m, r, n_cur, b);
        }
        mm -= 1;
    }
}

/// Involution-based vEB construction (§2.3) of the `2^d − 1` element
/// region at `lo`: one B-tree level step with `B = 2^⌊d/2⌋ − 1` separates
/// the top subtree from the bottom subtrees, then all subtrees recurse.
pub fn involution_veb<M: Machine>(m: &mut M, lo: usize, d: u32) {
    if d <= 1 {
        return;
    }
    let n_cur = (1usize << d) - 1;
    let threshold = m.local_threshold();
    if threshold > 0 && n_cur <= threshold {
        return m.local_task(lo, n_cur, |region| {
            involution_veb(&mut Ram::seq(region), 0, d)
        });
    }
    let (t, bb) = veb_split(d);
    let k = 1usize << bb;
    let r = (1usize << t) - 1;
    let l = k - 1;
    // Separate top keys (every k-th) to the front. The padded size 2^d is
    // a power of k iff bb | d: use Ξ₁ (digit reversals) when it is, Ξ₂
    // (J maps) otherwise.
    if d.is_multiple_of(bb) {
        padded_unshuffle_pow(m, lo, k, d / bb);
    } else {
        padded_unshuffle_mod(m, lo, n_cur, k);
    }
    // Interleave the l leaf-slot lists into bottom subtrees of l
    // consecutive keys each.
    if l >= 2 {
        shuffle_mod_rounds(m, lo + r, lo + n_cur, l);
    }
    // Recurse on the top subtree and every bottom subtree.
    let mut tasks = Vec::with_capacity(r + 2);
    tasks.push(Region::new(lo, r, t));
    for q in 0..=r {
        tasks.push(Region::new(lo + r + q * l, l, bb));
    }
    m.run_tasks(tasks, |mm, reg| involution_veb(mm, reg.lo, reg.tag));
}

// ---------------------------------------------------------------------
// Chapter 3: cycle-leader constructions
// ---------------------------------------------------------------------

/// Cycle-leader vEB construction (§3.1) of the `2^d − 1` element region
/// at `lo`: one equidistant gather separates the top subtree from the
/// bottom subtrees (odd heights gather two halves and join them with one
/// circular shift), then all subtrees recurse.
pub fn cycle_leader_veb<M: Machine>(m: &mut M, lo: usize, d: u32) {
    if d <= 1 {
        return;
    }
    let n_cur = (1usize << d) - 1;
    let threshold = m.local_threshold();
    if threshold > 0 && n_cur <= threshold {
        return m.local_task(lo, n_cur, |region| {
            cycle_leader_veb(&mut Ram::seq(region), 0, d)
        });
    }
    let (t, bb) = veb_split(d);
    let r = (1usize << t) - 1;
    let l = (1usize << bb) - 1;
    if t == bb {
        // Even number of levels: r = l, gather directly.
        m.gather(lo, r, l, GatherMode::Standalone);
    } else {
        // Odd: r = 2l + 1. Gather each half (a perfect tree of d − 1
        // levels with square shape l × l) — the halves are disjoint, so
        // they run as parallel tasks — then one circular shift joins the
        // two gathered tops around the median.
        let half = (n_cur - 1) / 2;
        m.run_tasks(
            vec![
                Region::new(lo, half, ()),
                Region::new(lo + half + 1, half, ()),
            ],
            move |mm, reg| mm.gather(reg.lo, l, l, GatherMode::Standalone),
        );
        // Region [lo+l, lo+l+half+1) = [rest_left | median | top_right];
        // shift the last l + 1 elements (median + right top) to its front.
        m.rotate_right(lo + l, lo + l + half + 1, l + 1);
    }
    let mut tasks = Vec::with_capacity(r + 2);
    tasks.push(Region::new(lo, r, t));
    for q in 0..=r {
        tasks.push(Region::new(lo + r + q * l, l, bb));
    }
    m.run_tasks(tasks, |mm, reg| cycle_leader_veb(mm, reg.lo, reg.tag));
}

/// Cycle-leader B-tree construction (§3.2): per level, the extended
/// equidistant gather hoists all internal keys to the front, then the
/// internal prefix recurses (iteratively). With `b = 1` this is the BST
/// construction of §3.3.
pub fn cycle_leader_btree<M: Machine>(m: &mut M, b: usize, levels: u32) {
    let mut mm = levels;
    while mm >= 2 {
        extended_gather(m, 0, b, mm, true);
        mm -= 1;
    }
}

/// The extended equidistant gather (`r > l`, §3.2) on the
/// `(b+1)^levels − 1` element region at `lo`: recursively gather each of
/// the `b + 1` partitions, then hoist all internal keys with one chunked
/// gather. `representative` marks the recursion path that carries the
/// per-depth fixed costs on launch-charging backends (the paper's §6
/// per-depth kernel batching).
fn extended_gather<M: Machine>(m: &mut M, lo: usize, b: usize, levels: u32, representative: bool) {
    let k = b + 1;
    match levels {
        0 | 1 => (),
        2 => m.gather(lo, b, b, GatherMode::Batched { representative }),
        _ => {
            let c = k.pow(levels - 2); // chunk size C = (B+1)^{levels-2}
            let part_len = c * k;
            // Partition 0 has C·k − 1 elements (standard pattern);
            // partitions 1..=b start with an internal element followed by
            // a standard pattern — the regions below skip it.
            let mut tasks = Vec::with_capacity(k);
            tasks.push(Region::new(lo, part_len - 1, representative));
            for p in 1..k {
                let start = lo + part_len - 1 + (p - 1) * part_len;
                tasks.push(Region::new(start + 1, part_len - 1, false));
            }
            m.run_tasks(tasks, |mm, reg| {
                extended_gather(mm, reg.lo, b, levels - 1, reg.tag)
            });
            // Hoist: from offset C−1 the region reads, in chunk units,
            // [L₀ (b) | I₁ | L₁ (b) | … | I_b | L_b (b)] — the exact
            // gather pattern with r = l = b.
            m.gather_chunks(lo + c - 1, b, b, c, GatherMode::Batched { representative });
        }
    }
}

// ---------------------------------------------------------------------
// Chapter 5: non-perfect (complete) tree extensions
// ---------------------------------------------------------------------

/// Move the `L` overflow leaves of a complete **binary** tree to the
/// array suffix, leaving the full-level elements sorted in the prefix.
///
/// In sorted order the overflow leaves sit at even positions
/// `0, 2, …, 2(L−1)`, interleaved with their parents: a 2-way un-shuffle
/// of the first `2L` elements separates `[leaves | parents]`, and one
/// circular shift of the whole array moves the leaves to the back.
pub fn strip_overflow_binary<M: Machine>(m: &mut M, shape: CompleteShape) {
    debug_assert_eq!(m.len(), shape.len());
    let l = shape.overflow();
    if l == 0 {
        return;
    }
    unshuffle_mod_rounds(m, 0, 2 * l, 2);
    let n = shape.len();
    m.rotate_right(0, n, n - l); // rotate_left by l
}

/// Move the `L` overflow leaves of a complete **B-tree** to the array
/// suffix (the multiway analogue of [`strip_overflow_binary`]).
pub fn strip_overflow_btree<M: Machine>(m: &mut M, shape: BtreeCompleteShape) {
    debug_assert_eq!(m.len(), shape.len());
    let b = shape.b();
    let k = b + 1;
    let l = shape.overflow();
    if l == 0 {
        return;
    }
    let q = shape.full_overflow_nodes();
    let s = shape.partial_node_len();
    debug_assert_eq!(l, q * b + s);
    if q > 0 {
        // [leaf slots S₀..S_{B−1} (q each) | parents (q)]
        unshuffle_mod_rounds(m, 0, q * k, k);
        // Regroup leaf-slot lists into per-node runs of B keys.
        if b >= 2 {
            shuffle_mod_rounds(m, 0, q * b, b);
        }
        // [leaves (qB) | parents (q) | partial (s) | rest]
        // -> [leaves (qB) | partial (s) | parents (q) | rest]
        if s > 0 {
            let len = q + s; // q < len, so "rotate left by q" is:
            m.rotate_right(q * b, q * b + len, len - q);
        }
    }
    // [overflow leaves (L) | full elements (I)] -> [full | overflow].
    let n = shape.len();
    m.rotate_right(0, n, n - l);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::reference_permutation;

    /// Ξ₁ and Ξ₂ must implement the same permutation on power sizes.
    #[test]
    fn padded_unshuffle_variants_agree() {
        let k = 4usize;
        let digits = 5u32;
        let n = k.pow(digits) - 1;
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b = a.clone();
        padded_unshuffle_pow(&mut Ram::seq(&mut a), 0, k, digits);
        padded_unshuffle_mod(&mut Ram::seq(&mut b), 0, n, k);
        assert_eq!(a, b);
        // And internal keys (every k-th, 1-indexed) land sorted in front.
        for (idx, &v) in a[..k.pow(digits - 1) - 1].iter().enumerate() {
            assert_eq!(v as usize, (idx + 1) * k - 1);
        }
    }

    /// The machine rounds reproduce `ist_shuffle`'s slice shuffles.
    #[test]
    fn shuffle_rounds_match_slice_shuffles() {
        let k = 3usize;
        let n = k * 41;
        let pad = 5usize;
        let mut via_machine: Vec<u32> = (0..(pad + n) as u32).collect();
        let mut via_slices = via_machine.clone();
        shuffle_mod_rounds(&mut Ram::seq(&mut via_machine), pad, pad + n, k);
        ist_shuffle::shuffle_mod(&mut via_slices[pad..], k);
        assert_eq!(via_machine, via_slices);
        unshuffle_mod_rounds(&mut Ram::seq(&mut via_machine), pad, pad + n, k);
        ist_shuffle::unshuffle_mod(&mut via_slices[pad..], k);
        assert_eq!(via_machine, via_slices);
    }

    /// `construct` on a sequential Ram matches the oracle for a sweep of
    /// perfect and non-perfect sizes (the cross-backend sweep lives in
    /// `tests/machine_equivalence.rs`).
    #[test]
    fn construct_matches_oracle() {
        for n in [1usize, 2, 3, 7, 10, 26, 63, 100, 255, 729, 1000] {
            let sorted: Vec<u64> = (0..n as u64).collect();
            for layout in [
                Layout::Bst,
                Layout::Veb,
                Layout::Btree { b: 2 },
                Layout::Btree { b: 8 },
            ] {
                let expect = reference_permutation(&sorted, layout);
                for algorithm in Algorithm::ALL {
                    let mut got = sorted.clone();
                    construct(&mut Ram::seq(&mut got), layout, algorithm).unwrap();
                    assert_eq!(got, expect, "n={n} {layout:?} {algorithm:?}");
                }
            }
        }
    }
}
