//! The classical sequential in-place baseline (Fich, Munro, Poblete).
//!
//! Section 1.2 of the paper: for data permuted *from sorted order*, the
//! FMP cycle-leader algorithm permutes in place in
//! `O(N · (τ_π + τ_π⁻¹))` time using the inverse permutation to detect
//! cycle minima — but it is inherently sequential (cycle walks cannot be
//! split), which is exactly the gap the paper's parallel algorithms
//! close. We expose it as a baseline for the ablation benches and as a
//! correctness cross-check: it derives the permutation from the
//! closed-form position maps rather than from the involution/gather
//! structure, so agreement is strong evidence both are right.

use crate::Layout;
use ist_layout::{
    bst_pos, bst_pos_inv, complete::BtreeCompleteShape, veb_pos, veb_pos_inv, CompleteShape,
};
use ist_perm::permute_sorted_in_place;

/// Permute sorted `data` into `layout` in place, **sequentially**, with
/// the Fich–Munro–Poblete cycle-leader algorithm driven by the
/// closed-form position maps.
///
/// Produces exactly the same array as
/// [`crate::permute_in_place`] / [`crate::permute_in_place_seq`].
///
/// # Examples
/// ```
/// use ist_core::{fich_baseline, permute_in_place_seq, Algorithm, Layout};
/// let mut a: Vec<u32> = (0..1000).collect();
/// let mut b = a.clone();
/// fich_baseline(&mut a, Layout::Veb).unwrap();
/// permute_in_place_seq(&mut b, Layout::Veb, Algorithm::CycleLeader).unwrap();
/// assert_eq!(a, b);
/// ```
pub fn fich_baseline<T>(data: &mut [T], layout: Layout) -> Result<(), crate::Error> {
    let n = data.len();
    if n <= 1 {
        if matches!(layout, Layout::Btree { b: 0 }) {
            return Err(crate::Error::ZeroNodeCapacity);
        }
        return Ok(());
    }
    match layout {
        Layout::Bst => {
            let shape = CompleteShape::new(n);
            permute_sorted_in_place(
                data,
                |i| shape.pos(i, bst_pos),
                |i| shape.pos_inv(i, bst_pos_inv),
            );
        }
        Layout::Veb => {
            let shape = CompleteShape::new(n);
            permute_sorted_in_place(
                data,
                |i| shape.pos(i, veb_pos),
                |i| shape.pos_inv(i, veb_pos_inv),
            );
        }
        Layout::Btree { b } => {
            if b == 0 {
                return Err(crate::Error::ZeroNodeCapacity);
            }
            let shape = BtreeCompleteShape::new(n, b);
            permute_sorted_in_place(data, |i| shape.pos(i), |i| shape.pos_inv(i));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{permute_in_place_seq, Algorithm};

    #[test]
    fn matches_paper_algorithms_everywhere() {
        for n in [1usize, 2, 7, 26, 63, 100, 511, 1000, 4095] {
            for layout in [Layout::Bst, Layout::Btree { b: 3 }, Layout::Veb] {
                let sorted: Vec<u64> = (0..n as u64).collect();
                let mut fich = sorted.clone();
                fich_baseline(&mut fich, layout).unwrap();
                let mut ours = sorted.clone();
                permute_in_place_seq(&mut ours, layout, Algorithm::Involution).unwrap();
                assert_eq!(fich, ours, "n={n} {layout:?}");
            }
        }
    }

    #[test]
    fn rejects_zero_b() {
        let mut v = vec![1u8, 2];
        assert!(fich_baseline(&mut v, Layout::Btree { b: 0 }).is_err());
    }
}
