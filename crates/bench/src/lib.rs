//! # ist-bench
//!
//! Shared harness for regenerating the paper's evaluation (Chapter 6):
//! workload generation, thread-pool control, wall-clock measurement, CSV
//! emission, and the crossover-point calculation behind the paper's
//! headline result ("permutation pays off after Q ≈ 1% of N queries").
//!
//! The actual figures are produced by the `figures` binary
//! (`cargo run -p ist-bench --release --bin figures -- <fig>`); Criterion
//! micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Sorted keys `0, 2, 4, …` (odd values are guaranteed misses).
pub fn sorted_keys(n: usize) -> Vec<u64> {
    (0..n as u64).map(|x| 2 * x).collect()
}

/// `q` uniformly random query keys over the value range of
/// [`sorted_keys`]`(n)` (≈50% hits), deterministic per `seed`.
pub fn uniform_queries(n: usize, q: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..q).map(|_| rng.gen_range(0..2 * n as u64)).collect()
}

/// Wall-clock a closure once (the permutation benchmarks re-create their
/// input per trial, so single-shot timing over multiple trials is done by
/// the caller).
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Average wall-clock over `trials` runs, each on a fresh input produced
/// by `setup`.
pub fn time_avg<S, F, T>(trials: usize, mut setup: S, mut f: F) -> Duration
where
    S: FnMut() -> T,
    F: FnMut(T),
{
    let mut total = Duration::ZERO;
    for _ in 0..trials {
        let input = setup();
        let start = Instant::now();
        f(input);
        total += start.elapsed();
    }
    total / trials as u32
}

/// Run `f` inside a rayon pool of exactly `p` threads.
///
/// On this container there is a single hardware core, so `p > 1` measures
/// the algorithms' behavior under oversubscription rather than true
/// speedup; EXPERIMENTS.md documents this.
pub fn with_pool<R: Send>(p: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(p)
        .build()
        .expect("pool")
        .install(f)
}

/// Given per-Q combined times for a layout and for the binary-search
/// baseline (same Q grid), return the smallest Q at which the layout's
/// combined time (permute + Q queries) beats the baseline's (0 + Q
/// queries), if any.
pub fn crossover(qs: &[usize], layout_times: &[f64], baseline_times: &[f64]) -> Option<usize> {
    qs.iter()
        .zip(layout_times.iter().zip(baseline_times))
        .find(|(_, (l, b))| l < b)
        .map(|(q, _)| *q)
}

/// Emit one CSV row to stdout (the `figures` binary's only output
/// channel; redirect to a file to keep it).
pub fn row(fields: &[String]) {
    println!("{}", fields.join(","));
}

/// Convenience: format a `Duration` in seconds with high resolution.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_deterministic_and_in_range() {
        let a = uniform_queries(100, 1000, 7);
        let b = uniform_queries(100, 1000, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| k < 200));
        assert_ne!(a, uniform_queries(100, 1000, 8));
    }

    #[test]
    fn crossover_finds_first_win() {
        let qs = [10usize, 100, 1000];
        assert_eq!(
            crossover(&qs, &[5.0, 4.0, 3.0], &[3.0, 4.5, 4.0]),
            Some(100)
        );
        assert_eq!(
            crossover(&qs, &[5.0, 4.0, 3.0], &[3.0, 3.5, 4.0]),
            Some(1000)
        );
        assert_eq!(crossover(&qs, &[9.0, 9.0, 9.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn pool_runs_closure() {
        let x = with_pool(2, rayon::current_num_threads);
        assert_eq!(x, 2);
    }
}
