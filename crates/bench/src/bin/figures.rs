//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p ist-bench --release --bin figures -- <which> [--scale S]
//! ```
//!
//! `<which>` ∈ `table1.1 | fig6.1 | fig6.2 | fig6.3 | fig6.4 | fig6.5 |
//! fig6.6 | fig6.7 | fig6.8 | fig6.9 | all`. Output is CSV on stdout with
//! one header line per figure. `--scale` shifts the maximum problem size
//! by `S` powers of two (default sizes are laptop-scale; the paper used
//! N = 2²⁹ on a 2×10-core Xeon — see EXPERIMENTS.md for the mapping).

use ist_bench::*;
use ist_core::{permute_in_place, permute_in_place_seq, Algorithm, Layout};
use ist_gather::{equidistant_gather_chunks_par, gather_len, swap_halves_par};
use ist_gpu_sim::{kernels as gk, query as gq, Gpu, GpuConfig};
use ist_pem_sim::{kernels as pk, PemConfig, TrackedArray};
use ist_query::{QueryKind, Searcher};

const GPU_B: usize = 32; // 128-byte lines on the GPU (paper §6.0.3)
const CPU_B: usize = 8; // 64-byte lines, 64-bit keys (paper §6.0.1)

fn algorithms() -> Vec<(&'static str, Layout, Algorithm)> {
    vec![
        ("involution_bst", Layout::Bst, Algorithm::Involution),
        (
            "involution_btree",
            Layout::Btree { b: CPU_B },
            Algorithm::Involution,
        ),
        ("involution_veb", Layout::Veb, Algorithm::Involution),
        ("cycle_leader_bst", Layout::Bst, Algorithm::CycleLeader),
        (
            "cycle_leader_btree",
            Layout::Btree { b: CPU_B },
            Algorithm::CycleLeader,
        ),
        ("cycle_leader_veb", Layout::Veb, Algorithm::CycleLeader),
    ]
}

/// Figures 6.1 / 6.2: permutation time vs N for all six algorithms.
fn fig_permute(parallel: bool, scale: i32) {
    let which = if parallel { "fig6.2" } else { "fig6.1" };
    row(&[
        which.to_string(),
        "n".into(),
        "algorithm".into(),
        "seconds".into(),
    ]);
    for e in 16..=(22 + scale).max(16) as u32 {
        let n = (1usize << e) - 1;
        for (name, layout, algo) in algorithms() {
            let t = time_avg(
                3,
                || sorted_keys(n),
                |mut v| {
                    if parallel {
                        permute_in_place(&mut v, layout, algo).unwrap();
                    } else {
                        permute_in_place_seq(&mut v, layout, algo).unwrap();
                    }
                    std::hint::black_box(&v);
                },
            );
            row(&[
                which.into(),
                n.to_string(),
                name.into(),
                secs(t).to_string(),
            ]);
        }
    }
}

/// Figure 6.3: speedup vs P of the fastest algorithm per layout
/// (BST: involution; B-tree and vEB: cycle-leader, per Figures 6.1/6.2).
fn fig6_3(scale: i32) {
    row(&[
        "fig6.3".into(),
        "layout".into(),
        "p".into(),
        "speedup".into(),
    ]);
    let n = (1usize << (20 + scale).max(16)) - 1;
    let fastest = [
        ("bst", Layout::Bst, Algorithm::Involution),
        ("btree", Layout::Btree { b: CPU_B }, Algorithm::CycleLeader),
        ("veb", Layout::Veb, Algorithm::CycleLeader),
    ];
    for (name, layout, algo) in fastest {
        let t1 = time_avg(
            3,
            || sorted_keys(n),
            |mut v| permute_in_place_seq(&mut v, layout, algo).unwrap(),
        );
        for p in [1usize, 2, 4, 8] {
            let tp = with_pool(p, || {
                time_avg(
                    3,
                    || sorted_keys(n),
                    |mut v| permute_in_place(&mut v, layout, algo).unwrap(),
                )
            });
            row(&[
                "fig6.3".into(),
                name.into(),
                p.to_string(),
                (secs(t1) / secs(tp)).to_string(),
            ]);
        }
    }
}

/// Figure 6.4: throughput (keys/s) of one chunked equidistant gather vs
/// swapping the array halves, as a function of P.
fn fig6_4(scale: i32) {
    row(&[
        "fig6.4".into(),
        "operation".into(),
        "p".into(),
        "throughput_keys_per_s".into(),
    ]);
    let b = CPU_B;
    let chunk = 1usize << (14 + scale).max(10);
    let n_gather = gather_len(b, b) * chunk;
    let n_swap = 1usize << (17 + scale).max(13);
    for p in [1usize, 2, 4, 8] {
        let tg = with_pool(p, || {
            time_avg(
                3,
                || sorted_keys(n_gather),
                |mut v| equidistant_gather_chunks_par(&mut v, b, b, chunk),
            )
        });
        row(&[
            "fig6.4".into(),
            "equidistant_gather_chunks".into(),
            p.to_string(),
            (n_gather as f64 / secs(tg)).to_string(),
        ]);
        let ts = with_pool(p, || {
            time_avg(3, || sorted_keys(n_swap), |mut v| swap_halves_par(&mut v))
        });
        row(&[
            "fig6.4".into(),
            "swap_halves".into(),
            p.to_string(),
            (n_swap as f64 / secs(ts)).to_string(),
        ]);
    }
}

fn query_kinds() -> Vec<(QueryKind, Option<Layout>)> {
    vec![
        (QueryKind::Sorted, None),
        (QueryKind::Bst, Some(Layout::Bst)),
        (QueryKind::BstPrefetch, Some(Layout::Bst)),
        (QueryKind::Btree(CPU_B), Some(Layout::Btree { b: CPU_B })),
        (QueryKind::Veb, Some(Layout::Veb)),
    ]
}

/// Figure 6.5: time to run 10⁶ (scaled: 10⁵) queries vs N per layout.
fn fig6_5(scale: i32) {
    row(&[
        "fig6.5".into(),
        "n".into(),
        "searcher".into(),
        "seconds".into(),
    ]);
    let q = 100_000usize;
    for e in (16..=(24 + scale).max(16) as u32).step_by(2) {
        let n = (1usize << e) - 1;
        let queries = uniform_queries(n, q, 42);
        for (kind, layout) in query_kinds() {
            let mut data = sorted_keys(n);
            if let Some(l) = layout {
                permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let s = Searcher::new(&data, kind);
            let t = time_once(|| {
                std::hint::black_box(s.batch_count_seq(&queries));
            });
            row(&[
                "fig6.5".into(),
                n.to_string(),
                kind.name().into(),
                secs(t).to_string(),
            ]);
        }
    }
}

/// Figures 6.6 / 6.7: combined permute + Q queries vs Q, and the
/// crossover Q* per layout (sequential / parallel).
fn fig_combined(parallel: bool, scale: i32) {
    let which = if parallel { "fig6.7" } else { "fig6.6" };
    row(&[which.into(), "q".into(), "layout".into(), "seconds".into()]);
    let n = (1usize << (22 + scale).max(16)) - 1; // paper: 2^29
    let qs: Vec<usize> = (0..=14).map(|i| (n / 1000) << i).collect();
    let max_q = *qs.last().unwrap();
    let all_queries = uniform_queries(n, max_q, 99);

    let setups: Vec<(String, Option<(Layout, QueryKind)>)> = vec![
        ("binary_search".into(), None),
        ("bst".into(), Some((Layout::Bst, QueryKind::Bst))),
        (
            "btree".into(),
            Some((Layout::Btree { b: CPU_B }, QueryKind::Btree(CPU_B))),
        ),
        ("veb".into(), Some((Layout::Veb, QueryKind::Veb))),
    ];
    let mut times: Vec<Vec<f64>> = Vec::new();
    for (name, setup) in &setups {
        let mut data = sorted_keys(n);
        let permute_t = match setup {
            None => 0.0,
            Some((layout, _)) => secs(time_once(|| {
                if parallel {
                    permute_in_place(&mut data, *layout, Algorithm::CycleLeader).unwrap();
                } else {
                    permute_in_place_seq(&mut data, *layout, Algorithm::CycleLeader).unwrap();
                }
            })),
        };
        let kind = setup.map(|(_, k)| k).unwrap_or(QueryKind::Sorted);
        let s = Searcher::new(&data, kind);
        let mut series = Vec::new();
        for &q in &qs {
            let batch = &all_queries[..q];
            let t = time_once(|| {
                let c = if parallel {
                    s.batch_count(batch)
                } else {
                    s.batch_count_seq(batch)
                };
                std::hint::black_box(c);
            });
            let combined = permute_t + secs(t);
            series.push(combined);
            row(&[
                which.into(),
                q.to_string(),
                name.clone(),
                combined.to_string(),
            ]);
        }
        times.push(series);
    }
    // Crossovers vs the binary-search baseline (row 0).
    let baseline = times[0].clone();
    for (i, (name, setup)) in setups.iter().enumerate() {
        if setup.is_none() {
            continue;
        }
        let q_star = crossover(&qs, &times[i], &baseline);
        row(&[
            format!("{which}.crossover"),
            name.clone(),
            q_star.map(|q| q.to_string()).unwrap_or("none".into()),
            q_star
                .map(|q| format!("{:.3}%", 100.0 * q as f64 / n as f64))
                .unwrap_or_default(),
        ]);
    }
}

/// Figure 6.8: GPU (SIMT model) permutation time vs N.
fn fig6_8(scale: i32) {
    row(&[
        "fig6.8".into(),
        "n".into(),
        "algorithm".into(),
        "model_time_units".into(),
    ]);
    for e in (16..=(24 + scale).max(16) as u32).step_by(2) {
        let n = (1usize << e) - 1;
        // B = 31 keeps (B+1)^m power-of-two-aligned with n = 2^e - 1.
        let b = 31usize;
        let algos: Vec<gk::GpuAlgorithm> = vec![
            gk::GpuAlgorithm::InvolutionBst,
            gk::GpuAlgorithm::InvolutionBtree { b },
            gk::GpuAlgorithm::InvolutionVeb,
            gk::GpuAlgorithm::CycleLeaderBst,
            gk::GpuAlgorithm::CycleLeaderBtree { b },
            gk::GpuAlgorithm::CycleLeaderVeb,
        ];
        for algo in algos {
            // B-tree sizes require n = 32^m - 1, i.e. e ≡ 0 (mod 5).
            let is_btree = matches!(
                algo,
                gk::GpuAlgorithm::InvolutionBtree { .. }
                    | gk::GpuAlgorithm::CycleLeaderBtree { .. }
            );
            if is_btree && e % 5 != 0 {
                continue;
            }
            let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
            let t = gk::permute(&mut gpu, algo);
            row(&[
                "fig6.8".into(),
                n.to_string(),
                algo.name().into(),
                t.to_string(),
            ]);
        }
    }
}

/// Figure 6.9: GPU combined permute + Q queries vs Q (N fixed), plus
/// crossovers vs binary search.
fn fig6_9(scale: i32) {
    row(&[
        "fig6.9".into(),
        "q".into(),
        "layout".into(),
        "model_time_units".into(),
    ]);
    // n must be 32^m - 1 for the B-tree construction: e ≡ 0 (mod 5).
    let mut e = (20 + scale).max(15) as u32;
    e -= e % 5;
    let n = (1usize << e) - 1;
    let sample = uniform_queries(n, 4096, 7);
    let qs: Vec<usize> = (0..=14).map(|i| (n / 1000) << i).collect();

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    // Baseline: binary search on un-permuted data.
    {
        let gpu = Gpu::from_sorted(n, GpuConfig::default());
        let per_q = gq::per_query_cost(&gpu, gq::GpuQueryKind::BinarySearch, &sample);
        let times: Vec<f64> = qs.iter().map(|&q| per_q * q as f64).collect();
        series.push(("binary_search".into(), times));
    }
    let b = 31usize;
    let layouts: Vec<(&str, gk::GpuAlgorithm, gq::GpuQueryKind)> = vec![
        (
            "bst",
            gk::GpuAlgorithm::InvolutionBst,
            gq::GpuQueryKind::Bst,
        ),
        (
            "btree",
            gk::GpuAlgorithm::CycleLeaderBtree { b },
            gq::GpuQueryKind::Btree(b),
        ),
        (
            "veb",
            gk::GpuAlgorithm::CycleLeaderVeb,
            gq::GpuQueryKind::Veb,
        ),
    ];
    for (name, algo, qkind) in layouts {
        let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
        let permute_t = gk::permute(&mut gpu, algo);
        let per_q = gq::per_query_cost(&gpu, qkind, &sample);
        let times: Vec<f64> = qs.iter().map(|&q| permute_t + per_q * q as f64).collect();
        series.push((name.into(), times));
    }
    for (name, times) in &series {
        for (&q, t) in qs.iter().zip(times) {
            row(&["fig6.9".into(), q.to_string(), name.clone(), t.to_string()]);
        }
    }
    let baseline = series[0].1.clone();
    for (name, times) in series.iter().skip(1) {
        let q_star = crossover(&qs, times, &baseline);
        row(&[
            "fig6.9.crossover".into(),
            name.clone(),
            q_star.map(|q| q.to_string()).unwrap_or("none".into()),
            q_star
                .map(|q| format!("{:.3}%", 100.0 * q as f64 / n as f64))
                .unwrap_or_default(),
        ]);
    }
}

/// Table 1.1: empirical PEM I/O counts per algorithm across N, checking
/// the growth rates of the analytic bounds.
fn table1_1(scale: i32) {
    row(&[
        "table1.1".into(),
        "n".into(),
        "algorithm".into(),
        "p".into(),
        "q_ios".into(),
    ]);
    let cfg = |p: usize| PemConfig { m: 2048, b: 16, p };
    for e in [12u32, 14, (16 + scale).max(14) as u32] {
        let n = (1usize << e) - 1;
        for p in [1usize, 4] {
            type PemRun = fn(&mut TrackedArray);
            let runs: Vec<(&str, PemRun)> = vec![
                ("involution_bst", |a: &mut TrackedArray| {
                    pk::involution_bst(a)
                }),
                ("involution_veb", |a: &mut TrackedArray| {
                    pk::involution_veb(a)
                }),
                ("cycle_leader_bst", |a: &mut TrackedArray| {
                    pk::cycle_leader_bst(a)
                }),
                ("cycle_leader_veb", |a: &mut TrackedArray| {
                    pk::cycle_leader_veb(a)
                }),
            ];
            for (name, run) in runs {
                let mut arr = TrackedArray::from_sorted(n, cfg(p));
                run(&mut arr);
                row(&[
                    "table1.1".into(),
                    n.to_string(),
                    name.into(),
                    p.to_string(),
                    arr.stats().max_per_proc().to_string(),
                ]);
            }
        }
        // B-tree algorithms need (B+1)^m - 1 sizes.
        let b = 3usize;
        let m = e / 2;
        let n = 4usize.pow(m) - 1;
        for p in [1usize, 4] {
            let mut arr = TrackedArray::from_sorted(n, cfg(p));
            pk::involution_btree(&mut arr, b);
            row(&[
                "table1.1".into(),
                n.to_string(),
                "involution_btree".into(),
                p.to_string(),
                arr.stats().max_per_proc().to_string(),
            ]);
            let mut arr = TrackedArray::from_sorted(n, cfg(p));
            pk::cycle_leader_btree(&mut arr, b);
            row(&[
                "table1.1".into(),
                n.to_string(),
                "cycle_leader_btree".into(),
                p.to_string(),
                arr.stats().max_per_proc().to_string(),
            ]);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale: i32 = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let _ = GPU_B; // GPU benches use b = 31 so sizes align with 2^e - 1
    match which {
        "table1.1" => table1_1(scale),
        "fig6.1" => fig_permute(false, scale),
        "fig6.2" => fig_permute(true, scale),
        "fig6.3" => fig6_3(scale),
        "fig6.4" => fig6_4(scale),
        "fig6.5" => fig6_5(scale),
        "fig6.6" => fig_combined(false, scale),
        "fig6.7" => fig_combined(true, scale),
        "fig6.8" => fig6_8(scale),
        "fig6.9" => fig6_9(scale),
        "all" => {
            table1_1(scale);
            fig_permute(false, scale);
            fig_permute(true, scale);
            fig6_3(scale);
            fig6_4(scale);
            fig6_5(scale);
            fig_combined(false, scale);
            fig_combined(true, scale);
            fig6_8(scale);
            fig6_9(scale);
        }
        other => {
            eprintln!("unknown figure '{other}'; use table1.1 | fig6.1..fig6.9 | all");
            std::process::exit(2);
        }
    }
}
