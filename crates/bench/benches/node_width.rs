//! Node-width sweep: runtime-`b` descent vs. the const-width wide
//! kernel, across B-tree widths straddling the compiled ones.
//!
//! Widths 8 and 16 have monomorphized `WideBtreeNav` kernels (SIMD
//! compare-and-count for `u64` keys when the target features are
//! compiled in); 7, 15, and 31 do not, so their "wide" row measures the
//! same runtime navigator the auto-upgrade falls back to — the delta
//! between neighboring widths is the cost of the runtime trip-count
//! loop, isolated from tree-shape effects. The committed
//! `BENCH_node_width.json` in the repository root is this bench with
//! `IST_BENCH_JSON` at full size.
//!
//! Set `IST_BENCH_SMOKE=1` to shrink the tree and batch (CI bit-rot
//! guard).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use implicit_search_trees::{Algorithm, QueryKind, Searcher, StaticIndex};
use ist_bench::{sorted_keys, uniform_queries};

fn bench_node_width(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("node_width");
    group.sample_size(if smoke { 3 } else { 30 });
    let n = if smoke { (1 << 14) - 1 } else { (1 << 20) - 1 };
    let queries = uniform_queries(n, if smoke { 1000 } else { 10_000 }, 42);
    for b in [7usize, 8, 15, 16, 31] {
        let kind = QueryKind::Btree(b);
        let index =
            StaticIndex::build_for_kind(sorted_keys(n), kind, Algorithm::CycleLeader).unwrap();
        // `searcher()` is the production route: wide kernel when `b` is
        // a compiled width (u64 is SIMD-eligible), runtime otherwise.
        let wide = index.searcher();
        let runtime = Searcher::new_runtime(index.as_slice(), kind);
        debug_assert_eq!(wide.is_wide(), b == 8 || b == 16);
        group.bench_function(BenchmarkId::new("runtime", format!("b{b}")), |bch| {
            bch.iter(|| std::hint::black_box(runtime.batch_search_pipelined(&queries)))
        });
        group.bench_function(BenchmarkId::new("wide", format!("b{b}")), |bch| {
            bch.iter(|| std::hint::black_box(wide.batch_search_pipelined(&queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_node_width);
criterion_main!(benches);
