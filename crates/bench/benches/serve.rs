//! End-to-end **serving** throughput and tail latency: the coalescing
//! front-end vs the canonical thread-per-connection baseline, over real
//! loopback TCP.
//!
//! Both servers run the identical wire protocol over an identically
//! preloaded [`ShardedMap`] and face the identical open-loop,
//! coordinated-omission-corrected workload (`ist_serve::loadgen`:
//! arrivals on a fixed timeline, latency measured from *scheduled
//! arrival* to reply receipt). The only variable is execution
//! strategy:
//!
//! * **naive** — one thread per connection, each request takes the
//!   global map lock, runs one scalar descent or one scalar
//!   insert/remove, and pays one write+flush syscall for its reply.
//!   Every overhead is per request.
//! * **coalesced** — the same connections feed a central coalescer
//!   that gathers all in-flight requests into per-tick batches (held
//!   open for a short linger so moderate load still forms large
//!   ticks), executes reads as three batched snapshot calls over the
//!   software-pipelined per-shard engines, folds writes last-wins into
//!   one bulk delta per tick, and writes each connection's replies
//!   once per tick. Every overhead is per *tick*.
//!
//! Two workload rows, each driven at an offered rate **above the naive
//! server's sustainable capacity** so its corrected tail reports the
//! backlog honestly:
//!
//! * `read_mostly` (10% writes) — the per-request cost is dominated by
//!   socket IO that a backlogged thread-per-connection server also
//!   amortizes (its `BufReader` drains whole bursts per wakeup), so a
//!   single-core host shows near-parity throughput; the coalesced win
//!   here is the bounded, linger-shaped latency profile at rates the
//!   naive server can also reach.
//! * `ingest_heavy` (90% writes) — scalar inserts pay a per-key
//!   sorted-buffer merge and per-run weight descent under the global
//!   lock, while the coalescer's tick-wide `batch_insert` sorts once
//!   and sweeps each run once; the advantage is algorithmic, so it
//!   survives even on one core.
//!
//! The committed `BENCH_serve.json` records all four subjects. The
//! acceptance target — **coalesced >= 3x naive throughput at
//! equal-or-better p99, >= 1k connections sustained** — presumes cores
//! for the shard-parallel engines and pipeline stages; on a
//! single-core container every stage time-slices one CPU against the
//! load generator itself, and the measured engine-level batch-vs-scalar
//! gap (`dynamic_mixed_perkey` vs `dynamic_mixed` in
//! `BENCH_dynamic.json`, ~5x) is diluted by the shared IO and
//! compaction bill. The printed speedup states plainly what this host
//! delivers.
//!
//! Set `IST_BENCH_SMOKE=1` to shrink sizes (CI bit-rot guard);
//! `IST_BENCH_JSON=<path>` appends one JSON object per subject.

use std::io::Write as _;
use std::time::Duration;

use implicit_search_trees::Layout;
use ist_serve::{loadgen, serve, LoadgenConfig, Mode, ServeMap, ServerConfig};

struct Row {
    name: &'static str,
    write_pct: u32,
    rate: f64,
    ops: usize,
}

fn report(row: &str, bench: &str, conns: usize, write_pct: u32, r: &loadgen::LoadReport) {
    let p = r.latency;
    println!(
        "  {row:<12} {bench:<10} {:>9.0} ops/s  p50 {:>11} ns  p99 {:>11} ns  p999 {:>11} ns  ({} ops, {} conns)",
        r.throughput, p.p50, p.p99, p.p999, r.completed, conns
    );
    if let Ok(path) = std::env::var("IST_BENCH_JSON") {
        let line = format!(
            "{{\"group\":\"serve\",\"bench\":\"{row}/{bench}\",\"throughput_ops_s\":{:.0},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"conns\":{conns},\"write_pct\":{write_pct},\"ops\":{}}}\n",
            r.throughput, p.p50, p.p99, p.p999, p.max, r.completed
        );
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

fn main() {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    // Preloaded live keys (even, so half the gets miss).
    let n: u64 = if smoke { 1 << 14 } else { 1 << 20 };
    let conns = if smoke { 64 } else { 1024 };
    let shards = 4;
    let rows: &[Row] = if smoke {
        &[Row {
            name: "read_mostly",
            write_pct: 10,
            rate: 20_000.0,
            ops: 8_000,
        }]
    } else {
        &[
            Row {
                name: "read_mostly",
                write_pct: 10,
                rate: 120_000.0,
                ops: 360_000,
            },
            Row {
                name: "ingest_heavy",
                write_pct: 90,
                rate: 160_000.0,
                ops: 480_000,
            },
        ]
    };
    println!("group serve (n={n}, conns={conns}, {shards} shards)");

    let build = || {
        let keys: Vec<u64> = (0..n).map(|k| 2 * k).collect();
        let vals: Vec<Vec<u8>> = keys.iter().map(|k| k.to_le_bytes().to_vec()).collect();
        ServeMap::build(keys, vals, Layout::Veb, shards).expect("build")
    };

    for row in rows {
        let load = LoadgenConfig {
            conns,
            workers: 4,
            total_ops: row.ops,
            rate: row.rate,
            write_pct: row.write_pct,
            key_space: 2 * n, // even keys live: hits, misses, fresh inserts
            value_len: 16,
            burst: 8,
            seed: 0x5EED,
        };
        let mut results = Vec::new();
        for (bench, mode) in [("naive", Mode::Direct), ("coalesced", Mode::Coalescing)] {
            let handle = serve(
                build(),
                ServerConfig {
                    mode,
                    // Group-commit gather window: hold each tick open
                    // ~1ms (smoke) / ~4ms so moderate load still forms
                    // large ticks — the fixed per-tick cost is what
                    // coalescing amortizes. Ignored by the naive mode,
                    // which has no ticks.
                    linger: Duration::from_micros(if smoke { 1000 } else { 4000 }),
                    ..ServerConfig::default()
                },
            )
            .expect("serve");
            let r = loadgen::run(handle.addr(), &load).expect("load run");
            assert_eq!(
                r.completed, row.ops,
                "{}/{bench}: dropped replies",
                row.name
            );
            report(row.name, bench, conns, row.write_pct, &r);
            handle.stop();
            results.push(r);
            if !smoke {
                // Let the subject tear down off the measured path: a
                // thousand connection threads exiting and a churned
                // million-key map dropping would otherwise time-slice
                // against the next subject's run.
                std::thread::sleep(Duration::from_secs(4));
            }
        }
        let speedup = results[1].throughput / results[0].throughput;
        println!(
            "  {:<12} coalesced/naive: {speedup:.2}x throughput (target >= 3x assumes multi-core), p99 {} vs {} ns",
            row.name, results[1].latency.p99, results[0].latency.p99
        );
    }
}
