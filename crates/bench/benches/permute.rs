//! Criterion micro-benchmarks for the six construction algorithms
//! (the statistical companion to Figures 6.1/6.2; the `figures` binary
//! produces the full sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ist_bench::sorted_keys;
use ist_core::{permute_in_place, permute_in_place_seq, Algorithm, Layout};

fn bench_permute(c: &mut Criterion) {
    let mut group = c.benchmark_group("permute");
    group.sample_size(10);
    let n = (1usize << 18) - 1;
    let combos = [
        ("involution_bst", Layout::Bst, Algorithm::Involution),
        (
            "involution_btree",
            Layout::Btree { b: 8 },
            Algorithm::Involution,
        ),
        ("involution_veb", Layout::Veb, Algorithm::Involution),
        ("cycle_leader_bst", Layout::Bst, Algorithm::CycleLeader),
        (
            "cycle_leader_btree",
            Layout::Btree { b: 8 },
            Algorithm::CycleLeader,
        ),
        ("cycle_leader_veb", Layout::Veb, Algorithm::CycleLeader),
    ];
    for (name, layout, algo) in combos {
        group.bench_function(BenchmarkId::new("seq", name), |bch| {
            bch.iter_batched(
                || sorted_keys(n),
                |mut v| permute_in_place_seq(&mut v, layout, algo).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("par", name), |bch| {
            bch.iter_batched(
                || sorted_keys(n),
                |mut v| permute_in_place(&mut v, layout, algo).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_permute);
criterion_main!(benches);
