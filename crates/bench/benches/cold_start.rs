//! Cold-start: recover a persisted [`DynamicMap`] from its run files
//! (`open` — one sequential read per run, zero-copy key adoption for
//! fixed-width integer keys) versus rebuilding the same map from a
//! sorted key/value dump file (`rebuild` — read the dump, decode, and
//! run the argsort-free presorted construction; the full in-place
//! layout permutation still runs). Both sides start from bytes on
//! disk. The gap is the point of the on-disk format: run files store
//! keys **already in layout order**, so recovery replaces the whole
//! construction phase with a sequential, checksummed read.
//!
//! `open_wal_tail` opens a store that was killed with 256 unsealed
//! writes in its WAL — the same path plus tail replay and a
//! checkpoint rotation.
//!
//! A second group measures WAL append throughput under each
//! [`implicit_search_trees::FsyncPolicy`] — the knob's honest cost:
//! `always` pays an fsync per acknowledged record, `every=N`
//! amortizes it, `never` leaves durability to the OS.
//!
//! Sizes: 2^20 resident keys (2^16 under `IST_BENCH_SMOKE=1`).
//! `IST_BENCH_JSON=<path>` appends one JSON line per benchmark; the
//! committed `BENCH_cold_start.json` records the full-size run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use implicit_search_trees::store::{wal_file_name, FsyncPolicy, StdVfs, StoreConfig, WalWriter};
use implicit_search_trees::{Algorithm, CompactionMode, DynamicMap, QueryKind};
use ist_bench::sorted_keys;
use std::path::{Path, PathBuf};

/// Fresh subdirectory under the cargo-managed bench tmpdir.
fn bench_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("cold_start_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

/// Persist a quiesced `n`-key map (every version in a tier run) into a
/// fresh directory; with `tail`, follow with 256 unsealed inserts so
/// the WAL carries a replayable tail.
fn persist_store(name: &str, keys: &[u64], vals: &[u64], tail: bool) -> PathBuf {
    let dir = bench_dir(name);
    let mut map = DynamicMap::build_for_kind(
        keys.to_vec(),
        vals.to_vec(),
        QueryKind::Veb,
        Algorithm::CycleLeader,
        4096,
    )
    .unwrap()
    .with_compaction_mode(CompactionMode::Inline);
    map.quiesce();
    map.persist_to(&dir, StoreConfig::new()).expect("persist");
    if tail {
        for k in 0..256u64 {
            map.insert(k, k);
        }
        map.flush().expect("flush");
    }
    drop(map);
    dir
}

/// Write the rebuild side's input: raw little-endian keys then values,
/// the minimal sorted dump a recovery-by-reconstruction would read.
fn write_dump(path: &Path, keys: &[u64], vals: &[u64]) {
    let mut bytes = Vec::with_capacity((keys.len() + vals.len()) * 8);
    for k in keys {
        bytes.extend_from_slice(&k.to_le_bytes());
    }
    for v in vals {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes).expect("write dump");
}

fn bench_cold_start(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let n = if smoke { 1 << 16 } else { 1 << 20 };
    let keys = sorted_keys(n);
    let vals: Vec<u64> = keys.iter().map(|&k| k.wrapping_mul(3)).collect();

    let clean_dir = persist_store("open", &keys, &vals, false);
    let tail_dir = persist_store("open_tail", &keys, &vals, true);
    let dump_path = bench_dir("dump").join("sorted.dump");
    write_dump(&dump_path, &keys, &vals);

    let mut group = c.benchmark_group("cold_start");
    group.sample_size(if smoke { 3 } else { 10 });
    group.bench_function(BenchmarkId::new("open", format!("n_{n}")), |b| {
        b.iter(|| {
            let m = DynamicMap::<u64, u64>::open(&clean_dir).expect("open");
            std::hint::black_box(m.len())
        })
    });
    group.bench_function(BenchmarkId::new("open_wal_tail", format!("n_{n}")), |b| {
        b.iter(|| {
            let m = DynamicMap::<u64, u64>::open(&tail_dir).expect("open");
            std::hint::black_box(m.len())
        })
    });
    group.bench_function(BenchmarkId::new("rebuild", format!("n_{n}")), |b| {
        b.iter(|| {
            let bytes = std::fs::read(&dump_path).expect("read dump");
            let (kb, vb) = bytes.split_at(n * 8);
            let k: Vec<u64> = kb
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let v: Vec<u64> = vb
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            let m = DynamicMap::build_for_kind(k, v, QueryKind::Veb, Algorithm::CycleLeader, 4096)
                .unwrap();
            std::hint::black_box(m.len())
        })
    });
    group.finish();

    // --- WAL append throughput under the fsync knob ---
    let mut wal_group = c.benchmark_group("wal_append");
    wal_group.sample_size(if smoke { 3 } else { 10 });
    let payload = [0xA5u8; 64];
    let batch = if smoke { 64 } else { 1024 };
    for (label, policy) in [
        ("always", FsyncPolicy::Always),
        ("every_64", FsyncPolicy::EveryN(64)),
        ("never", FsyncPolicy::Never),
    ] {
        let dir = bench_dir(&format!("wal_{label}"));
        let vfs = StdVfs;
        let mut wal =
            WalWriter::create(&vfs, &dir.join(wal_file_name(1)), 1, policy).expect("create wal");
        wal_group.bench_function(BenchmarkId::new("append_64b", label), |b| {
            b.iter(|| {
                for _ in 0..batch {
                    wal.append(std::hint::black_box(&payload)).expect("append");
                }
                std::hint::black_box(wal.appended())
            })
        });
    }
    wal_group.finish();
}

criterion_group!(benches, bench_cold_start);
criterion_main!(benches);
