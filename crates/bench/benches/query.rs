//! Criterion micro-benchmarks for point queries per layout
//! (the statistical companion to Figure 6.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ist_bench::{sorted_keys, uniform_queries};
use ist_core::{permute_in_place, Algorithm, Layout};
use ist_query::{QueryKind, Searcher};

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(20);
    let n = (1usize << 20) - 1;
    let queries = uniform_queries(n, 10_000, 42);
    let kinds: [(QueryKind, Option<Layout>); 5] = [
        (QueryKind::Sorted, None),
        (QueryKind::Bst, Some(Layout::Bst)),
        (QueryKind::BstPrefetch, Some(Layout::Bst)),
        (QueryKind::Btree(8), Some(Layout::Btree { b: 8 })),
        (QueryKind::Veb, Some(Layout::Veb)),
    ];
    for (kind, layout) in kinds {
        let mut data = sorted_keys(n);
        if let Some(l) = layout {
            permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
        }
        let name = match kind {
            QueryKind::BstPrefetch => "bst_prefetch",
            k => k.name(),
        };
        group.bench_function(BenchmarkId::new("10k_queries", name), |bch| {
            let s = Searcher::new(&data, kind);
            bch.iter(|| std::hint::black_box(s.batch_count_seq(&queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
