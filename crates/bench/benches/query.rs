//! Criterion micro-benchmarks for point queries per layout
//! (the statistical companion to Figure 6.5).
//!
//! Set `IST_BENCH_SMOKE=1` to shrink the tree and batch (CI bit-rot
//! guard: the numbers are meaningless, but the code paths all run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use implicit_search_trees::{Algorithm, QueryKind, StaticIndex};
use ist_bench::{sorted_keys, uniform_queries};

fn bench_query(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("query");
    group.sample_size(if smoke { 3 } else { 20 });
    let n = if smoke { (1 << 14) - 1 } else { (1 << 20) - 1 };
    let queries = uniform_queries(n, if smoke { 1000 } else { 10_000 }, 42);
    let kinds = [
        QueryKind::Sorted,
        QueryKind::Bst,
        QueryKind::BstPrefetch,
        QueryKind::Btree(8),
        QueryKind::Veb,
    ];
    for kind in kinds {
        let index =
            StaticIndex::build_for_kind(sorted_keys(n), kind, Algorithm::CycleLeader).unwrap();
        let name = match kind {
            QueryKind::BstPrefetch => "bst_prefetch",
            k => k.name(),
        };
        group.bench_function(BenchmarkId::new("10k_queries", name), |bch| {
            let s = index.searcher();
            bch.iter(|| std::hint::black_box(s.batch_count_seq(&queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
