//! Mixed read/write workloads on the log-structured [`DynamicMap`],
//! against two baselines:
//!
//! * `StaticMap::batch_get` on the same resident key set — the
//!   acceptance bar: the dynamized map's batched reads must stay within
//!   **2×** of the static map it is built from (the committed
//!   `BENCH_dynamic.json` in the repository root records this at full
//!   size);
//! * `std::collections::BTreeMap` — the pointer-chasing structure the
//!   dynamization replaces.
//!
//! Workloads per iteration are one serving "tick": a batched read of
//! the read share plus scalar writes for the write share, at 95/5 and
//! 50/50 read/write ratios. Writes draw from the resident key range
//! (mostly overwrites plus a delete stride), so the live set stays
//! ~stable while versions pile up and merges fire across samples —
//! the steady state a serving deployment sits in.
//!
//! Set `IST_BENCH_SMOKE=1` to shrink sizes (CI bit-rot guard).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use implicit_search_trees::{DynamicMap, Layout, QueryKind, StaticMap};
use ist_bench::{sorted_keys, uniform_queries};
use std::collections::BTreeMap;

/// The dynamized map under test: bulk-loaded, then churned with one
/// buffer-capacity's worth of writes so several tiers are resident (a
/// fresh bulk load would serve from a single run, which flatters it).
fn churned_dynamic(keys: &[u64], writes: &[u64]) -> DynamicMap<u64, u64> {
    let mut map = DynamicMap::build(keys.to_vec(), keys.to_vec(), Layout::Veb).unwrap();
    for (i, &k) in writes.iter().enumerate() {
        if i % 4 == 3 {
            map.remove(&k);
        } else {
            map.insert(k, k.wrapping_mul(3));
        }
    }
    map
}

fn mixed_tick(map: &mut DynamicMap<u64, u64>, reads: &[u64], writes: &[u64]) -> usize {
    let hits = map.batch_get(reads).iter().filter(|v| v.is_some()).count();
    for (i, &k) in writes.iter().enumerate() {
        if i % 8 == 7 {
            map.remove(&k);
        } else {
            map.insert(k, k ^ 1);
        }
    }
    hits
}

fn mixed_tick_btree(map: &mut BTreeMap<u64, u64>, reads: &[u64], writes: &[u64]) -> usize {
    let hits = reads.iter().filter(|k| map.get(k).is_some()).count();
    for (i, &k) in writes.iter().enumerate() {
        if i % 8 == 7 {
            map.remove(&k);
        } else {
            map.insert(k, k ^ 1);
        }
    }
    hits
}

fn bench_dynamic_workload(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("dynamic_workload");
    group.sample_size(if smoke { 3 } else { 30 });
    let n = if smoke { (1 << 14) - 1 } else { (1 << 20) - 1 };
    let batch = if smoke { 1000 } else { 10_000 };
    let keys = sorted_keys(n);
    let queries = uniform_queries(n, batch, 42);
    let churn = uniform_queries(n, implicit_search_trees::DEFAULT_BUFFER_CAP * 3, 7);

    // --- the acceptance-bar pair: batched reads, static vs dynamized ---
    let static_map = StaticMap::build_for_kind(
        keys.clone(),
        keys.clone(),
        QueryKind::Veb,
        implicit_search_trees::Algorithm::CycleLeader,
    )
    .unwrap();
    group.bench_function(BenchmarkId::new("static_batch_get", "veb"), |b| {
        b.iter(|| std::hint::black_box(static_map.batch_get(&queries)))
    });
    let dynamic_map = churned_dynamic(&keys, &churn);
    group.bench_function(BenchmarkId::new("dynamic_batch_get", "veb"), |b| {
        b.iter(|| std::hint::black_box(dynamic_map.batch_get(&queries)))
    });

    // --- mixed serving ticks at two read/write ratios ---
    for (label, read_share) in [("95_5", 95usize), ("50_50", 50)] {
        let reads = &queries[..batch * read_share / 100];
        let writes = &queries[batch * read_share / 100..];
        let mut dmap = churned_dynamic(&keys, &churn);
        group.bench_function(BenchmarkId::new("dynamic_mixed", label), |b| {
            b.iter(|| std::hint::black_box(mixed_tick(&mut dmap, reads, writes)))
        });
        let mut bmap: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
        group.bench_function(BenchmarkId::new("btreemap_mixed", label), |b| {
            b.iter(|| std::hint::black_box(mixed_tick_btree(&mut bmap, reads, writes)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dynamic_workload);
criterion_main!(benches);
