//! Mixed read/write workloads on the log-structured [`DynamicMap`],
//! against two baselines:
//!
//! * `StaticMap::batch_get` on the same resident key set — the
//!   acceptance bar: the dynamized map's batched reads must stay within
//!   **2×** of the static map it is built from (the committed
//!   `BENCH_dynamic.json` in the repository root records this at full
//!   size);
//! * `std::collections::BTreeMap` — the pointer-chasing structure the
//!   dynamization replaces.
//!
//! Workloads per iteration are one serving "tick": a batched read of
//! the read share plus the write share, at 95/5 and 50/50 read/write
//! ratios. `dynamic_mixed` routes writes through the bulk-delta API
//! (`batch_insert` / `batch_remove` — the production write path this
//! crate ships); `dynamic_mixed_perkey` keeps the scalar per-key loop
//! for transparency, so the bulk-path win is visible in the same JSON.
//! Writes draw from the resident key range (mostly overwrites plus a
//! delete stride), so the live set stays ~stable while versions pile
//! up and merges fire across samples — the steady state a serving
//! deployment sits in.
//!
//! Two write-path-only groups ride along:
//!
//! * `bulk_ingest` — one `batch_insert` of a full batch per tick,
//!   dynamized vs `BTreeMap`;
//! * `merge_throughput` — seal + k-way merge + rebuild of a
//!   ~quarter-million-version map per sample, at `merge_threads` 1
//!   vs 4 (on a single-core host the 4-thread figure measures slicing
//!   overhead under oversubscription, not speedup; set `IST_PARALLEL`
//!   to the core count on real hardware).
//!
//! Set `IST_BENCH_SMOKE=1` to shrink sizes (CI bit-rot guard).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use implicit_search_trees::{
    Algorithm, CompactionMode, CompactionPolicy, DynamicMap, Layout, QueryKind, StaticMap,
};
use ist_bench::{sorted_keys, uniform_queries};
use std::collections::BTreeMap;

/// The dynamized map under test: bulk-loaded, then churned with one
/// buffer-capacity's worth of writes so several tiers are resident (a
/// fresh bulk load would serve from a single run, which flatters it).
fn churned_dynamic(keys: &[u64], writes: &[u64]) -> DynamicMap<u64, u64> {
    let mut map = DynamicMap::build(keys.to_vec(), keys.to_vec(), Layout::Veb).unwrap();
    for (i, &k) in writes.iter().enumerate() {
        if i % 4 == 3 {
            map.remove(&k);
        } else {
            map.insert(k, k.wrapping_mul(3));
        }
    }
    map
}

/// [`churned_dynamic`] under the write-optimized configuration the
/// write-heavy ticks run with: a buffer sized for the tick's batch (a
/// seal fires every few ticks, not every tick), tiering to bound write
/// amplification (a seal lands next to sibling runs instead of forcing
/// an immediate merge), and the lazy bottom so steady-state churn never
/// rewrites the ~n-version bottom run.
fn churned_dynamic_tuned(keys: &[u64], writes: &[u64], buffer_cap: usize) -> DynamicMap<u64, u64> {
    let mut map = DynamicMap::build_for_kind(
        keys.to_vec(),
        keys.to_vec(),
        QueryKind::Veb,
        Algorithm::CycleLeader,
        buffer_cap,
    )
    .unwrap()
    .with_policy(CompactionPolicy::tiered(4).with_lazy_bottom(true));
    for (i, &k) in writes.iter().enumerate() {
        if i % 4 == 3 {
            map.remove(&k);
        } else {
            map.insert(k, k.wrapping_mul(3));
        }
    }
    map
}

/// Split a tick's write share into the delete stride (every 8th) and
/// the insert remainder, as the bulk ops consume them.
fn split_writes(writes: &[u64]) -> (Vec<(u64, u64)>, Vec<u64>) {
    let mut inserts = Vec::with_capacity(writes.len());
    let mut deletes = Vec::new();
    for (i, &k) in writes.iter().enumerate() {
        if i % 8 == 7 {
            deletes.push(k);
        } else {
            inserts.push((k, k ^ 1));
        }
    }
    (inserts, deletes)
}

/// One serving tick with the write share routed through the bulk-delta
/// API: one `batch_insert` + one `batch_remove` instead of a scalar
/// call per key.
fn mixed_tick_bulk(map: &mut DynamicMap<u64, u64>, reads: &[u64], writes: &[u64]) -> usize {
    let hits = map.batch_get(reads).iter().filter(|v| v.is_some()).count();
    let (inserts, deletes) = split_writes(writes);
    map.batch_insert(inserts);
    map.batch_remove(&deletes);
    hits
}

/// The scalar per-key write loop (the pre-bulk write path), kept so the
/// committed JSON shows both routes side by side.
fn mixed_tick_perkey(map: &mut DynamicMap<u64, u64>, reads: &[u64], writes: &[u64]) -> usize {
    let hits = map.batch_get(reads).iter().filter(|v| v.is_some()).count();
    for (i, &k) in writes.iter().enumerate() {
        if i % 8 == 7 {
            map.remove(&k);
        } else {
            map.insert(k, k ^ 1);
        }
    }
    hits
}

fn mixed_tick_btree(map: &mut BTreeMap<u64, u64>, reads: &[u64], writes: &[u64]) -> usize {
    let hits = reads.iter().filter(|k| map.get(k).is_some()).count();
    for (i, &k) in writes.iter().enumerate() {
        if i % 8 == 7 {
            map.remove(&k);
        } else {
            map.insert(k, k ^ 1);
        }
    }
    hits
}

fn bench_dynamic_workload(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("dynamic_workload");
    group.sample_size(if smoke { 3 } else { 30 });
    let n = if smoke { (1 << 14) - 1 } else { (1 << 20) - 1 };
    let batch = if smoke { 1000 } else { 10_000 };
    let keys = sorted_keys(n);
    let queries = uniform_queries(n, batch, 42);
    let churn = uniform_queries(n, implicit_search_trees::DEFAULT_BUFFER_CAP * 3, 7);

    // --- the acceptance-bar pair: batched reads, static vs dynamized ---
    let static_map = StaticMap::build_for_kind(
        keys.clone(),
        keys.clone(),
        QueryKind::Veb,
        Algorithm::CycleLeader,
    )
    .unwrap();
    group.bench_function(BenchmarkId::new("static_batch_get", "veb"), |b| {
        b.iter(|| std::hint::black_box(static_map.batch_get(&queries)))
    });
    let dynamic_map = churned_dynamic(&keys, &churn);
    group.bench_function(BenchmarkId::new("dynamic_batch_get", "veb"), |b| {
        b.iter(|| std::hint::black_box(dynamic_map.batch_get(&queries)))
    });

    // --- mixed serving ticks at two read/write ratios ---
    for (label, read_share) in [("95_5", 95usize), ("50_50", 50)] {
        let reads = &queries[..batch * read_share / 100];
        let writes = &queries[batch * read_share / 100..];
        let mut dmap = churned_dynamic_tuned(&keys, &churn, 4 * batch);
        group.bench_function(BenchmarkId::new("dynamic_mixed", label), |b| {
            b.iter(|| std::hint::black_box(mixed_tick_bulk(&mut dmap, reads, writes)))
        });
        let mut dmap_perkey = churned_dynamic(&keys, &churn);
        group.bench_function(BenchmarkId::new("dynamic_mixed_perkey", label), |b| {
            b.iter(|| std::hint::black_box(mixed_tick_perkey(&mut dmap_perkey, reads, writes)))
        });
        let mut bmap: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
        group.bench_function(BenchmarkId::new("btreemap_mixed", label), |b| {
            b.iter(|| std::hint::black_box(mixed_tick_btree(&mut bmap, reads, writes)))
        });
    }

    // --- write-only: one full-batch bulk ingest per tick ---
    let ingest = uniform_queries(n, batch, 9);
    let mut dmap = churned_dynamic_tuned(&keys, &churn, 4 * batch);
    group.bench_function(BenchmarkId::new("bulk_ingest", "dynamic"), |b| {
        b.iter(|| {
            std::hint::black_box(dmap.batch_insert(ingest.iter().map(|&k| (k, k ^ 1)).collect()))
        })
    });
    let mut bmap: BTreeMap<u64, u64> = keys.iter().map(|&k| (k, k)).collect();
    group.bench_function(BenchmarkId::new("bulk_ingest", "btreemap"), |b| {
        b.iter(|| {
            for &k in &ingest {
                bmap.insert(k, k ^ 1);
            }
            std::hint::black_box(bmap.len())
        })
    });
    group.finish();

    // --- merge throughput: seal + k-way merge + rebuild, 1 vs 4 merge
    //     threads (identical output by construction; the differential
    //     suite pins bit-identity) ---
    let mut merge_group = c.benchmark_group("merge_throughput");
    merge_group.sample_size(if smoke { 2 } else { 10 });
    let half = if smoke { 1 << 12 } else { 1 << 17 };
    // Evens form the bottom run; odds fill the buffer, so the measured
    // compaction merges two interleaved `half`-version sources.
    let bottom: Vec<u64> = (0..half as u64).map(|x| 2 * x).collect();
    let delta: Vec<(u64, u64)> = (0..half as u64).map(|x| (2 * x + 1, x)).collect();
    for threads in [1usize, 4] {
        merge_group.bench_function(
            BenchmarkId::new("compact", format!("threads_{threads}")),
            |b| {
                b.iter_batched(
                    || {
                        let mut m = DynamicMap::build_for_kind(
                            bottom.clone(),
                            bottom.clone(),
                            QueryKind::Veb,
                            Algorithm::CycleLeader,
                            half + 1, // buffer holds the whole delta un-sealed
                        )
                        .unwrap()
                        .with_compaction_mode(CompactionMode::Inline)
                        .with_policy(CompactionPolicy::tiered(1).with_merge_threads(threads));
                        m.batch_insert(delta.clone());
                        m
                    },
                    |mut m| {
                        m.compact_buffer();
                        std::hint::black_box(m.run_count())
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    merge_group.finish();
}

criterion_group!(benches, bench_dynamic_workload);
criterion_main!(benches);
