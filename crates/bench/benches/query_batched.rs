//! Batched query engine throughput: scalar loop vs. software-pipelined
//! multi-descent vs. rayon-parallel (pipelined within each chunk), per
//! layout — plus a sweep of the pipeline's window width.
//!
//! Records the perf trajectory for the batched engine; the committed
//! `BENCH_query_batched.json` in the repository root is this bench run
//! with `IST_BENCH_JSON` at full size (the `window_sweep` group is
//! split out into `BENCH_window_sweep.json`). The acceptance bar it
//! documents: pipelined `batch_search` ≥ 1.3× over the scalar loop on
//! the BST layout at `n = 2^20 − 1` with a 10k-key batch.
//!
//! Set `IST_BENCH_SMOKE=1` to shrink the tree and batch (CI bit-rot
//! guard).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use implicit_search_trees::{Algorithm, QueryKind, StaticIndex};
use ist_bench::{sorted_keys, uniform_queries};

fn bench_query_batched(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("query_batched");
    group.sample_size(if smoke { 3 } else { 30 });
    let n = if smoke { (1 << 14) - 1 } else { (1 << 20) - 1 };
    let queries = uniform_queries(n, if smoke { 1000 } else { 10_000 }, 42);
    let kinds = [
        QueryKind::Sorted,
        QueryKind::Bst,
        QueryKind::BstPrefetch,
        QueryKind::Btree(8),
        QueryKind::Veb,
    ];
    for kind in kinds {
        let index =
            StaticIndex::build_for_kind(sorted_keys(n), kind, Algorithm::CycleLeader).unwrap();
        let name = match kind {
            QueryKind::BstPrefetch => "bst_prefetch",
            k => k.name(),
        };
        let s = index.searcher();
        group.bench_function(BenchmarkId::new("scalar", name), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search_seq(&queries)))
        });
        group.bench_function(BenchmarkId::new("pipelined", name), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search_pipelined(&queries)))
        });
        group.bench_function(BenchmarkId::new("parallel", name), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search(&queries)))
        });
        group.bench_function(BenchmarkId::new("range_pipelined", name), |bch| {
            let ranges: Vec<(u64, u64)> = queries
                .chunks_exact(2)
                .map(|w| (w[0].min(w[1]), w[0].max(w[1])))
                .collect();
            bch.iter(|| std::hint::black_box(s.batch_range_count(&ranges)))
        });
    }
    group.finish();
}

/// Window-width sweep for the pipelined engine: the width is a
/// const-generic engine parameter; results are identical for every
/// width (the differential suite checks that), so this group measures
/// pure memory-level-parallelism headroom. 32 sits on the flat top of
/// the curve on the reference host; 8 is visibly starved.
fn bench_window_sweep(c: &mut Criterion) {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let mut group = c.benchmark_group("window_sweep");
    group.sample_size(if smoke { 3 } else { 30 });
    let n = if smoke { (1 << 14) - 1 } else { (1 << 20) - 1 };
    let queries = uniform_queries(n, if smoke { 1000 } else { 10_000 }, 42);
    for kind in [QueryKind::Bst, QueryKind::Btree(8), QueryKind::Veb] {
        let index =
            StaticIndex::build_for_kind(sorted_keys(n), kind, Algorithm::CycleLeader).unwrap();
        let s = index.searcher();
        group.bench_function(BenchmarkId::new(format!("{}/w8", kind.name()), n), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search_pipelined_with_window::<8>(&queries)))
        });
        group.bench_function(BenchmarkId::new(format!("{}/w16", kind.name()), n), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search_pipelined_with_window::<16>(&queries)))
        });
        group.bench_function(BenchmarkId::new(format!("{}/w32", kind.name()), n), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search_pipelined_with_window::<32>(&queries)))
        });
        group.bench_function(BenchmarkId::new(format!("{}/w64", kind.name()), n), |bch| {
            bch.iter(|| std::hint::black_box(s.batch_search_pipelined_with_window::<64>(&queries)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_batched, bench_window_sweep);
criterion_main!(benches);
