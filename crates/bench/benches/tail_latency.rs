//! Per-op **write tail latency** under churn: is the merge still on the
//! caller's path?
//!
//! The subjects, all bulk-loaded with the same keys and churned with
//! the same paced write stream. The harness is **open-loop and
//! coordinated-omission-corrected**: requests arrive on a fixed
//! timeline (one per inter-arrival gap), the writer sleeps until each
//! scheduled arrival, and the recorded latency is *completion minus
//! scheduled arrival* — so a multi-millisecond synchronous merge is
//! charged to every request it made wait, exactly as a serving
//! process's callers would experience it (timing only the call itself
//! would silently exclude them). The subjects:
//!
//! * `inline/veb` — `DynamicMap` with [`CompactionMode::Inline`]: the
//!   synchronous-merge baseline, where an overflowing write pays for
//!   the k-way merge + rebuild itself;
//! * `background/veb` — the same map with the default
//!   [`CompactionMode::Background`]: the overflowing write pays only
//!   for the seal (a buffer move plus a weight prefix sum — no layout
//!   permutation) while the merge runs on the worker thread;
//! * `sharded/veb` — a 4-shard [`ShardedMap`], background mode: seals
//!   and merges are per-shard and proportionally smaller.
//!
//! Reported per subject: p50 / p99 / p999 / max over the individual
//! write-call durations, plus the merge-visibility ratio the repository
//! root's `BENCH_tail_latency.json` commits — the acceptance bar is
//! **p999(inline) ≥ 10× p999(background)** under churn.
//!
//! Set `IST_BENCH_SMOKE=1` to shrink sizes (CI bit-rot guard);
//! `IST_BENCH_JSON=<path>` appends one JSON object per subject.

use implicit_search_trees::{Algorithm, CompactionMode, DynamicMap, QueryKind, ShardedMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// A 128-byte heap-allocated session record — serving payloads are
/// rows, not bare words. The seal **moves** records (no allocation on
/// the write path); the merge **clones** every one it streams, which is
/// exactly the work the background worker takes off the caller.
type Record = Box<[u64; 16]>;

fn record_of(k: u64) -> Record {
    Box::new([k; 16])
}

struct Percentiles {
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

fn percentiles(mut lat_ns: Vec<u64>) -> Percentiles {
    assert!(!lat_ns.is_empty());
    lat_ns.sort_unstable();
    let at = |q_num: usize, q_den: usize| lat_ns[(lat_ns.len() - 1) * q_num / q_den];
    Percentiles {
        p50: at(1, 2),
        p99: at(99, 100),
        p999: at(999, 1000),
        max: *lat_ns.last().unwrap(),
    }
}

/// Drive `ops` paced writes through `write`, recording each op's
/// **response time from its scheduled arrival** on a fixed open-loop
/// timeline (`arrival_i = start + i·gap`). This is the
/// coordinated-omission-corrected measurement: when a synchronous merge
/// stalls the writer for milliseconds, every request that was due to
/// arrive during the stall records the queueing delay it actually
/// suffered — the naive "time the call only" harness would silently
/// drop exactly the latencies the merge causes. The writer sleeps (not
/// spins) until each arrival, so a background worker gets the idle CPU
/// a real serving process would leave it.
///
/// The mix (7/8 overwrite-or-new insert, 1/8 delete over the loaded key
/// range) keeps the live set roughly stable while versions pile up and
/// merges fire throughout.
fn churn_latencies(
    ops: usize,
    key_range: u64,
    gap: Duration,
    mut write: impl FnMut(usize, u64),
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(0x7A11);
    let mut lat = Vec::with_capacity(ops);
    let start = Instant::now();
    for i in 0..ops {
        let key = rng.gen_range(0..key_range);
        let arrival = gap * (i as u32 + 1);
        loop {
            let now = start.elapsed();
            if now >= arrival {
                break; // behind schedule: serve immediately (queueing)
            }
            std::thread::sleep(arrival - now);
        }
        write(i, key);
        lat.push((start.elapsed() - arrival).as_nanos() as u64);
    }
    lat
}

fn report(bench: &str, ops: usize, p: &Percentiles) {
    println!(
        "  {bench:<24} p50 {:>9} ns  p99 {:>9} ns  p999 {:>10} ns  max {:>12} ns  ({ops} ops)",
        p.p50, p.p99, p.p999, p.max
    );
    if let Ok(path) = std::env::var("IST_BENCH_JSON") {
        let line = format!(
            "{{\"group\":\"tail_latency\",\"bench\":\"{bench}\",\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"ops\":{ops}}}\n",
            p.p50, p.p99, p.p999, p.max
        );
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

fn main() {
    let smoke = std::env::var_os("IST_BENCH_SMOKE").is_some();
    let n: usize = if smoke { 1 << 13 } else { 1 << 17 };
    let ops: usize = if smoke { 6_000 } else { 48_000 };
    let cap: usize = 128;
    // Open-loop inter-arrival gap: long enough that a background worker
    // actually gets scheduled between requests (this container is
    // single-core), short enough to keep merges constantly in flight.
    let gap = Duration::from_micros(if smoke { 20 } else { 40 });
    let keys: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
    let key_range = 4 * n as u64; // hits, overwrites, and fresh keys
    println!("group tail_latency (n={n}, ops={ops}, cap={cap}, gap={gap:?})");

    let records: Vec<Record> = keys.iter().map(|&k| record_of(k)).collect();

    let build_dynamic = |mode: CompactionMode| {
        DynamicMap::build_for_kind(
            keys.clone(),
            records.clone(),
            QueryKind::Veb,
            Algorithm::CycleLeader,
            cap,
        )
        .expect("valid configuration")
        .with_compaction_mode(mode)
    };

    let write_mix = |map: &mut DynamicMap<u64, Record>, i: usize, k: u64| {
        if i % 8 == 7 {
            map.remove(&k);
        } else {
            map.insert(k, record_of(k));
        }
    };

    // --- inline: the synchronous-merge baseline ---
    let mut inline_map = build_dynamic(CompactionMode::Inline);
    let inline = percentiles(churn_latencies(ops, key_range, gap, |i, k| {
        write_mix(&mut inline_map, i, k)
    }));
    report("inline/veb", ops, &inline);
    drop(inline_map);

    // --- background: seal on the write path, merge off it ---
    let mut bg_map = build_dynamic(CompactionMode::Background);
    let background = percentiles(churn_latencies(ops, key_range, gap, |i, k| {
        write_mix(&mut bg_map, i, k)
    }));
    report("background/veb", ops, &background);
    bg_map.quiesce();
    drop(bg_map);

    // --- sharded front-end: per-shard buffers, seals, and workers ---
    let mut sharded = ShardedMap::build_for_kind(
        keys.clone(),
        records.clone(),
        QueryKind::Veb,
        Algorithm::CycleLeader,
        cap,
        4,
    )
    .expect("valid configuration")
    .with_compaction_mode(CompactionMode::Background);
    let sharded_p = percentiles(churn_latencies(ops, key_range, gap, |i, k| {
        if i % 8 == 7 {
            sharded.remove(&k);
        } else {
            sharded.insert(k, record_of(k));
        }
    }));
    report("sharded4/veb", ops, &sharded_p);
    sharded.quiesce();

    let ratio = inline.p999 as f64 / background.p999.max(1) as f64;
    println!(
        "  p999 inline/background ratio: {ratio:.1}x (acceptance bar: >= 10x — merge off the caller's path)"
    );
}
