//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * transpose-optimized gather (§4.2) vs the plain cycle gather,
//! * hardware (`reverse_bits`) vs software bit reversal — the paper's
//!   `T_REV₂` parameter,
//! * blocked (reversal-based) parallel rotation vs `slice::rotate_right`,
//! * equidistant gather vs its naive r-round reference on identical
//!   inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ist_bench::sorted_keys;
use ist_bits::{rev2, rev2_software};
use ist_gather::{equidistant_gather, equidistant_gather_transposed, gather_len};
use ist_shuffle::{rotate_right, rotate_right_par};

fn bench_gather_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_variants");
    group.sample_size(10);
    for x in [8u32, 10] {
        let r = (1usize << x) - 1;
        let n = gather_len(r, r);
        group.bench_function(BenchmarkId::new("cycles", r), |bch| {
            bch.iter_batched(
                || sorted_keys(n),
                |mut v| equidistant_gather(&mut v, r, r),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("transposed", r), |bch| {
            bch.iter_batched(
                || sorted_keys(n),
                |mut v| equidistant_gather_transposed(&mut v, r),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_bit_reversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("t_rev2");
    let xs: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
    group.bench_function("hardware", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for &x in &xs {
                acc ^= rev2(30, std::hint::black_box(x) & 0x3fff_ffff);
            }
            acc
        })
    });
    group.bench_function("software", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for &x in &xs {
                acc ^= rev2_software(30, std::hint::black_box(x) & 0x3fff_ffff);
            }
            acc
        })
    });
    group.finish();
}

fn bench_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rotation");
    group.sample_size(10);
    let n = 1usize << 20;
    group.bench_function("std_rotate", |bch| {
        bch.iter_batched(
            || sorted_keys(n),
            |mut v| rotate_right(&mut v, 123_457),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("reversal_par", |bch| {
        bch.iter_batched(
            || sorted_keys(n),
            |mut v| rotate_right_par(&mut v, 123_457),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gather_variants,
    bench_bit_reversal,
    bench_rotation
);
criterion_main!(benches);
