//! Offline `criterion`-compatible micro-benchmark harness.
//!
//! Bench sources keep the upstream criterion idiom (groups,
//! `bench_function`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros); this shim times each routine over
//! `sample_size` samples, prints a median/min/max report to stdout, and —
//! when the `IST_BENCH_JSON` environment variable names a file — appends
//! one JSON object per benchmark so sweeps can be diffed across commits
//! (`BENCH_baseline.json` in the repository root is produced this way).
//!
//! Statistical rigor is intentionally modest (no outlier analysis, no
//! bootstrap): on the single-core CI-style hosts this workspace targets,
//! median-of-N wall clocks are what a perf trajectory needs. Swap the
//! manifest back to real criterion when a registry is available.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one batch per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would amortize many per batch.
    SmallInput,
    /// Large setup output; one invocation per batch.
    LargeInput,
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"{function}/{parameter}"`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(&self.name, &id.id, &bencher.samples);
        self
    }

    /// Finish the group (report already emitted per benchmark).
    pub fn finish(self) {}
}

/// Per-benchmark timing context handed to the routine closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up invocation outside the timed samples.
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on a fresh `setup()` input per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "  {id:<40} median {median:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
        sorted.len()
    );
    if let Ok(path) = std::env::var("IST_BENCH_JSON") {
        let line = format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}\n",
            escape(group),
            escape(id),
            median.as_nanos(),
            min.as_nanos(),
            max.as_nanos(),
            sorted.len()
        );
        let write = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = write {
            eprintln!("warning: could not append to {path}: {e}");
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |mut v| {
                    assert_eq!(v, vec![1, 2, 3]);
                    v.clear();
                },
                BatchSize::LargeInput,
            )
        });
    }
}
