//! # ist-shard
//!
//! [`ShardedMap`]: a **key-range-sharded** serving facade over
//! per-shard [`DynamicMap`]s — the multi-writer-scale front-end of the
//! serving story.
//!
//! ## Range partition
//!
//! A `ShardedMap` is `splits.len() + 1` shards under a sorted,
//! strictly-increasing split-key vector: shard `0` owns keys below
//! `splits[0]`, shard `i` owns `[splits[i-1], splits[i])`, the last
//! shard owns everything from the last split up
//! ([`ist_query::route::shard_of_key`]). Each shard is a full
//! [`DynamicMap`]: its own write buffer, sealed L0 runs, tiers, and
//! background compaction worker — so shards seal and merge
//! independently, and a hot key range never stalls writes elsewhere.
//!
//! ## Why the answers stay exact
//!
//! The **range-partition invariant** — every key in shard `j < i` is
//! strictly smaller than every key in shard `i` — turns global order
//! statistics into sums of per-shard answers:
//!
//! `rank(k) = Σ_{j < shard(k)} len_j + rank_{shard(k)}(k)`
//!
//! and `range_count` is a rank difference, so both are exact for the
//! same reason the per-shard answers are (the weight machinery in
//! [`ist_dynamic::dynamic`]). Order queries probe the home shard and
//! walk outward only across empty neighbors.
//!
//! ## Batched queries
//!
//! [`ShardedMap::batch_get`] / [`ShardedMap::batch_rank`] /
//! [`ShardedMap::batch_range_count`] partition the batch per shard **by
//! reference** ([`ist_query::route::partition_batch_ref`] — no key is
//! cloned just to route it), drive every shard's software-pipelined
//! descent engine **in parallel** (the sub-batches are disjoint), and
//! scatter the results back into input order
//! ([`ist_query::route::scatter_to_input_order`]) — bit-identical to
//! what one unsharded [`DynamicMap`] would answer, which
//! `tests/sharded_differential.rs` (repository root) checks against
//! both a `BTreeMap` oracle and a single-map mirror.
//!
//! ## Snapshots and concurrent readers
//!
//! The same read API is available off the writer's thread:
//!
//! * [`ShardedMap::snapshot`] freezes the **exact current** state into a
//!   [`ShardedFrozen`] — globally consistent, because taking it requires
//!   `&self` and mutation requires `&mut self`, so no write can
//!   interleave with the per-shard freezes. A serving loop that owns the
//!   map takes one of these per batch tick and hands it to reader
//!   threads (the `ist-serve` coalescer does exactly this).
//! * [`ShardedMap::reader`] returns a [`ShardedReader`] handle layered
//!   on the per-shard [`Reader`] cells, for threads that must observe a
//!   map **some other thread is mutating**. Each per-shard snapshot is a
//!   prefix of that shard's operation sequence (publication is
//!   seal/compaction-granular, lag op-bounded by the shard's
//!   `buffer_cap`), but the cuts are taken per shard, **not** at one
//!   global instant — see [`ShardedReader::snapshot`] for the honest
//!   contract.

#![forbid(unsafe_code)]

use std::path::Path;
use std::sync::Arc;

use ist_core::{Algorithm, Error, Layout};
use ist_dynamic::{
    default_kind_for_layout, CompactionMode, CompactionPolicy, DynamicMap, Frozen, Reader,
    DEFAULT_BUFFER_CAP,
};
use ist_query::route::{
    debug_assert_valid_splits, partition_batch, partition_batch_ref, partition_owned,
    scatter_to_input_order, shard_of_key,
};
use ist_query::QueryKind;
use ist_store::{shard_dir_name, Codec, ShardsFile, StoreConfig, StoreError};

/// A key-range-sharded map: range-partitioned shards, each a
/// [`DynamicMap`] with its own buffer and background compaction, behind
/// one exact read/write API.
///
/// Semantics mirror a single [`DynamicMap`] (one live value per key,
/// `insert` overwrites, `remove` deletes, order statistics see only
/// live keys); the differential suite pins batch results bit-identical
/// to the unsharded map.
///
/// # Examples
/// ```
/// use implicit_search_trees::{Layout, ShardedMap};
///
/// // Four shards at equal-count boundaries of the loaded data.
/// let keys: Vec<u64> = (0..10_000).map(|x| 3 * x).collect();
/// let vals: Vec<u64> = (0..10_000).collect();
/// let mut m = ShardedMap::build(keys, vals, Layout::Veb, 4).unwrap();
/// assert_eq!(m.shard_count(), 4);
/// assert_eq!(m.len(), 10_000);
///
/// m.insert(1, 999); // routed to the owning shard
/// assert_eq!(m.get(&1), Some(&999));
/// assert_eq!(m.rank(&1), 1); // global: one key (0) strictly below
///
/// // Batched reads straddle shard boundaries transparently.
/// let got = m.batch_get(&[0, 1, 29_997, 5]);
/// assert_eq!(got, vec![Some(&0), Some(&999), Some(&9_999), None]);
/// assert_eq!(m.range_count(&0, &u64::MAX), 10_001);
/// ```
pub struct ShardedMap<K, V> {
    /// Sorted, strictly increasing; shard `i` owns `[splits[i-1],
    /// splits[i])` with open ends at the extremes. `Arc`-shared with
    /// every [`ShardedReader`] and [`ShardedFrozen`] spawned from this
    /// map (splits never change after construction).
    splits: Arc<Vec<K>>,
    /// `shards.len() == splits.len() + 1`, ordered by key range.
    shards: Vec<DynamicMap<K, V>>,
}

impl<K, V> ShardedMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map with explicit split keys (`splits.len() + 1`
    /// shards), each shard a default-configured [`DynamicMap`] for
    /// `layout`. An empty `splits` gives a single shard.
    ///
    /// # Panics
    /// Panics if `splits` is not sorted and strictly increasing, or on
    /// `Layout::Btree { b: 0 }`.
    pub fn with_splits(splits: Vec<K>, layout: Layout) -> Self {
        Self::validate_splits(&splits);
        let shards = (0..splits.len() + 1)
            .map(|_| DynamicMap::new(layout))
            .collect();
        Self {
            splits: Arc::new(splits),
            shards,
        }
    }

    /// [`ShardedMap::with_splits`] with full per-shard control:
    /// explicit query descent, construction algorithm, and write-buffer
    /// capacity (each shard gets its own `buffer_cap`-entry buffer).
    ///
    /// # Panics
    /// Panics on unsorted `splits` or the invalid configurations
    /// [`DynamicMap::with_config`] rejects.
    pub fn with_splits_config(
        splits: Vec<K>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
    ) -> Self {
        Self::validate_splits(&splits);
        let shards = (0..splits.len() + 1)
            .map(|_| DynamicMap::with_config(kind, algorithm, buffer_cap))
            .collect();
        Self {
            splits: Arc::new(splits),
            shards,
        }
    }

    /// The one home of the split-vector precondition both explicit
    /// constructors enforce (bulk loaders construct splits sorted).
    fn validate_splits(splits: &[K]) {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "splits must be sorted and strictly increasing"
        );
    }

    /// Bulk-load from unsorted `(keys, values)` pairs (duplicate keys:
    /// the **last** pair wins, like [`DynamicMap::build`]), choosing
    /// split keys at equal-count boundaries of the loaded data and
    /// building one bulk run per shard. Duplicate-heavy data can
    /// collapse boundaries, yielding fewer than `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths or
    /// `num_shards == 0`.
    pub fn build(
        keys: Vec<K>,
        values: Vec<V>,
        layout: Layout,
        num_shards: usize,
    ) -> Result<Self, Error> {
        Self::build_for_kind(
            keys,
            values,
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
            DEFAULT_BUFFER_CAP,
            num_shards,
        )
    }

    /// [`ShardedMap::build`] with explicit descent, algorithm, and
    /// per-shard buffer capacity.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths,
    /// `num_shards == 0`, or on the invalid configurations
    /// [`DynamicMap::with_config`] rejects.
    pub fn build_for_kind(
        keys: Vec<K>,
        values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
        num_shards: usize,
    ) -> Result<Self, Error> {
        let (splits, parts) = Self::partition_bulk(keys, values, num_shards);
        let shards = parts
            .into_iter()
            // The global pre-pass sorted and deduped; every partition
            // is sorted with distinct keys, so shards skip both.
            .map(|(k, v)| DynamicMap::build_presorted(k, v, kind, algorithm, buffer_cap))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            splits: Arc::new(splits),
            shards,
        })
    }

    /// Builder-style [`CompactionMode`] override applied to every shard
    /// (they default to [`CompactionMode::Background`]).
    #[must_use]
    pub fn with_compaction_mode(mut self, mode: CompactionMode) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_compaction_mode(mode))
            .collect();
        self
    }

    /// Builder-style [`CompactionPolicy`] override applied to every
    /// shard; see [`DynamicMap::with_policy`]. Observable answers are
    /// identical under every policy — this trades write amplification
    /// against read fan-out, per shard.
    ///
    /// # Panics
    /// Panics on an invalid policy (tiered `fanout == 0`, leveled
    /// `fanout < 2`).
    #[must_use]
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_policy(policy))
            .collect();
        self
    }

    /// Dedup (last wins), pick equal-count splits, and partition the
    /// pairs by the resulting ranges — shared by both bulk loaders.
    #[allow(clippy::type_complexity)]
    fn partition_bulk(
        keys: Vec<K>,
        values: Vec<V>,
        num_shards: usize,
    ) -> (Vec<K>, Vec<(Vec<K>, Vec<V>)>) {
        assert_eq!(
            keys.len(),
            values.len(),
            "ShardedMap::build: {} keys but {} values",
            keys.len(),
            values.len()
        );
        assert!(num_shards >= 1, "num_shards must be at least 1");
        let mut pairs: Vec<(K, V)> = keys.into_iter().zip(values).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable: later duplicate stays later
        pairs.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(later, kept); // keep the later pair's value
                true
            } else {
                false
            }
        });
        // Equal-count boundaries over the (now distinct) sorted keys.
        let mut splits: Vec<K> = Vec::with_capacity(num_shards.saturating_sub(1));
        for i in 1..num_shards {
            let idx = i * pairs.len() / num_shards;
            if idx == 0 || idx >= pairs.len() {
                continue;
            }
            let candidate = &pairs[idx].0;
            if splits.last().is_none_or(|last| last < candidate) {
                splits.push(candidate.clone());
            }
        }
        let mut parts: Vec<(Vec<K>, Vec<V>)> = vec![(Vec::new(), Vec::new()); splits.len() + 1];
        for (k, v) in pairs {
            let s = shard_of_key(&splits, &k);
            parts[s].0.push(k);
            parts[s].1.push(v);
        }
        (splits, parts)
    }

    /// The shared read core over this map's live shards.
    fn view(&self) -> RangeView<'_, K, DynamicMap<K, V>> {
        RangeView {
            splits: &self.splits,
            shards: &self.shards,
        }
    }

    // ----- routing -----

    /// Index of the shard owning `key` (the range-partition router).
    pub fn shard_of(&self, key: &K) -> usize {
        shard_of_key(&self.splits, key)
    }

    /// The split keys (shard `i` owns `[splits[i-1], splits[i])`).
    pub fn splits(&self) -> &[K] {
        self.splits.as_slice()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live keys per shard, in key-range order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(DynamicMap::len).collect()
    }

    /// `true` while any shard has a background compaction in flight.
    pub fn compaction_in_flight(&self) -> bool {
        self.shards.iter().any(DynamicMap::compaction_in_flight)
    }

    /// Total sealed-but-uncompacted L0 runs across all shards (0 after
    /// [`ShardedMap::quiesce`]).
    pub fn sealed_runs(&self) -> usize {
        self.shards.iter().map(DynamicMap::sealed_runs).sum()
    }

    // ----- mutation -----

    /// Insert or overwrite in the owning shard; returns `true` iff a
    /// live value for `key` was replaced. See [`DynamicMap::insert`]
    /// for the seal/compact behavior behind an overflow.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let s = self.shard_of(&key);
        self.shards[s].insert(key, value)
    }

    /// Delete from the owning shard; returns `true` iff a live value
    /// was removed.
    pub fn remove(&mut self, key: &K) -> bool {
        let s = self.shard_of(key);
        self.shards[s].remove(key)
    }

    /// Bulk insert across shards: the delta is partitioned per shard by
    /// the range router ([`ist_query::route::partition_owned`] — items
    /// moved, not cloned) and every non-empty sub-delta is applied via
    /// [`DynamicMap::batch_insert`] **in parallel** under the
    /// rayon-shim scope (shards are disjoint structures, so `&mut`
    /// access per shard is race-free by construction). Returns the
    /// total number of pairs that replaced a live value.
    ///
    /// Global-rank exactness is untouched: the range-partition
    /// invariant (every key in shard `j < i` sorts strictly below every
    /// key in shard `i`) is a property of the *router*, not of when
    /// writes land, so per-shard bulk deltas — whatever order the
    /// scope schedules them in — leave
    /// `rank(k) = Σ_{j<shard(k)} len_j + rank_{shard(k)}(k)` exact, as
    /// the sharded differential suite pins against an unsharded mirror.
    ///
    /// # Examples
    /// ```
    /// use implicit_search_trees::{Layout, ShardedMap};
    ///
    /// let mut m: ShardedMap<u64, u64> = ShardedMap::with_splits(vec![10, 20], Layout::Veb);
    /// let replaced = m.batch_insert((0..30u64).map(|k| (k, k)).collect());
    /// assert_eq!(replaced, 0);
    /// assert_eq!(m.len(), 30);
    /// assert_eq!(m.shard_lens(), vec![10, 10, 10]);
    /// ```
    pub fn batch_insert(&mut self, pairs: Vec<(K, V)>) -> usize {
        debug_assert_valid_splits(&self.splits);
        let splits = &self.splits;
        let parts = partition_owned(pairs, self.shards.len(), |(k, _)| shard_of_key(splits, k));
        let mut counts = vec![0usize; self.shards.len()];
        rayon::scope(|s| {
            for ((shard, (_, routed)), count) in
                self.shards.iter_mut().zip(parts).zip(counts.iter_mut())
            {
                if routed.is_empty() {
                    continue;
                }
                s.spawn(move |_| *count = shard.batch_insert(routed));
            }
        });
        counts.into_iter().sum()
    }

    /// Bulk delete across shards; the delta is routed and applied
    /// shard-parallel exactly like [`ShardedMap::batch_insert`].
    /// Returns how many keys were live before the batch.
    pub fn batch_remove(&mut self, keys: &[K]) -> usize {
        debug_assert_valid_splits(&self.splits);
        let splits = &self.splits;
        let parts = partition_batch(keys, self.shards.len(), |k| shard_of_key(splits, k));
        let mut counts = vec![0usize; self.shards.len()];
        rayon::scope(|s| {
            for ((shard, (_, routed)), count) in
                self.shards.iter_mut().zip(&parts).zip(counts.iter_mut())
            {
                if routed.is_empty() {
                    continue;
                }
                s.spawn(move |_| *count = shard.batch_remove(routed));
            }
        });
        counts.into_iter().sum()
    }

    /// Seal every shard's buffer and start (or complete, for inline
    /// shards) a compaction per shard; see
    /// [`DynamicMap::compact_buffer`]. Shards are drained **in
    /// parallel** under the rayon-shim scope — like
    /// [`ShardedMap::batch_insert`] — so one shard's in-flight merge
    /// (whose install the seal must wait for) never stalls the seals of
    /// the others. Observable state is unchanged.
    pub fn compact_buffers(&mut self) {
        rayon::scope(|s| {
            for shard in &mut self.shards {
                s.spawn(move |_| shard.compact_buffer());
            }
        });
    }

    /// Drain every shard's deferred compaction work; see
    /// [`DynamicMap::quiesce`]. Observable state is unchanged.
    ///
    /// Shards drain **in parallel** under the rayon-shim scope: each
    /// shard's quiesce blocks on its own in-flight merge, and an
    /// earlier serial loop let one slow shard's merge delay even
    /// *starting* to drain the rest — exactly the stall a serving tick
    /// cannot afford.
    pub fn quiesce(&mut self) {
        rayon::scope(|s| {
            for shard in &mut self.shards {
                s.spawn(move |_| shard.quiesce());
            }
        });
    }

    // ----- snapshots -----

    /// Freeze the **exact current** state of every shard into a
    /// [`ShardedFrozen`] — the whole read API, independent of later
    /// writes.
    ///
    /// This cut is **globally consistent**: taking it borrows `&self`,
    /// and every mutation needs `&mut self`, so the per-shard freezes
    /// cannot interleave with any write. Cost: one ≤`buffer_cap`-entry
    /// buffer copy plus one `Arc` bump per resident run, per shard. A
    /// serving loop that owns the map takes one snapshot per batch tick
    /// and hands it to reader threads, which is how the `ist-serve`
    /// coalescer overlaps read execution with the next tick's writes.
    pub fn snapshot(&self) -> ShardedFrozen<K, V> {
        ShardedFrozen {
            splits: Arc::clone(&self.splits),
            shards: self.shards.iter().map(DynamicMap::snapshot).collect(),
        }
    }

    /// A cloneable handle for observing this map from threads that do
    /// **not** own it, layered on the per-shard [`DynamicMap::reader`]
    /// cells (the current state of every shard is published
    /// immediately). See [`ShardedReader::snapshot`] for the coherence
    /// contract — per-shard prefixes, not a global cut.
    pub fn reader(&self) -> ShardedReader<K, V> {
        ShardedReader {
            splits: Arc::clone(&self.splits),
            readers: self.shards.iter().map(DynamicMap::reader).collect(),
        }
    }

    // ----- scalar reads -----

    /// Number of live keys across all shards.
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` iff no key is live in any shard.
    pub fn is_empty(&self) -> bool {
        self.view().is_empty()
    }

    /// The live value under `key`, if any (one shard probe).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.view().get(key)
    }

    /// `true` iff `key` is live.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of live keys strictly smaller than `key`, globally exact:
    /// whole-shard lengths below the home shard plus one in-shard rank
    /// (the range-partition invariant).
    pub fn rank(&self, key: &K) -> usize {
        self.view().rank(key)
    }

    /// Number of live keys in `[lo, hi)` across all shards. Reversed
    /// bounds (`lo > hi`) yield 0 — never a panic (the workspace-wide
    /// contract).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.view().range_count(lo, hi)
    }

    /// The smallest live entry with key `≥ key`, if any.
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.view().lower_bound(key)
    }

    /// The smallest live entry with key **strictly greater** than
    /// `key`, if any.
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().successor(key)
    }

    /// The largest live entry with key **strictly smaller** than `key`,
    /// if any.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().predecessor(key)
    }

    // ----- batched reads: partition → parallel per-shard → scatter -----

    /// Batched [`ShardedMap::get`]: the batch is partitioned per shard
    /// **by reference** (routing clones no key), every shard's
    /// software-pipelined engine runs in parallel on its disjoint
    /// sub-batch, and results scatter back in input order — `out[i]` is
    /// exactly `get(&keys[i])`.
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.view().batch_get(keys)
    }

    /// Batched [`ShardedMap::rank`]: per-shard pipelined rank descents
    /// in parallel, each shard's results pre-offset by the summed
    /// lengths of the shards below it, scattered back in input order.
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.view().batch_rank(keys)
    }

    /// Per-pair [`ShardedMap::range_count`] (reversed pairs yield 0).
    /// Endpoint ranks go through the batched rank path, so ranges
    /// straddling shard boundaries cost the same two descents as local
    /// ones.
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.view().batch_range_count(ranges)
    }
}

// ----- durability -----

impl<K, V> ShardedMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static + Codec,
    V: Clone + Send + Sync + 'static + Codec,
{
    /// Make this map persistent in `dir`: the split vector is written
    /// to the atomically-installed `SHARDS` root file, and every shard
    /// becomes a full persistent [`DynamicMap`] in its own
    /// `shard-NNNN/` subdirectory (manifest + run files + WAL each).
    /// Shards log, seal, and rotate **independently** — a hot shard's
    /// fsyncs never serialize against a cold one's.
    ///
    /// # Panics
    /// Panics if the map is already persistent.
    ///
    /// # Errors
    /// Any filesystem failure; shards persisted before the failing one
    /// stay attached (reopenable), later ones stay memory-only.
    pub fn persist_to(
        &mut self,
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
    ) -> Result<(), StoreError> {
        let dir = dir.as_ref();
        cfg.vfs.create_dir_all(dir)?;
        ShardsFile {
            splits: (*self.splits).clone(),
        }
        .write_atomic(&*cfg.vfs, dir)?;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.persist_to(dir.join(shard_dir_name(i)), cfg.clone())?;
        }
        Ok(())
    }

    /// Reopen a sharded map persisted in `dir` with the default
    /// [`StoreConfig`].
    ///
    /// # Errors
    /// See [`ShardedMap::open_with`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreConfig::new())
    }

    /// Reopen a sharded map persisted in `dir`: the `SHARDS` root file
    /// names the split points, and each `shard-NNNN/` subdirectory is
    /// recovered as its own [`DynamicMap::open_with`] (manifest, runs,
    /// WAL-tail replay). Per-shard recovery is independent, so a crash
    /// mid-write in one shard never affects the others' state.
    ///
    /// # Errors
    /// Typed [`StoreError`]s for every failure mode — missing or
    /// corrupt files never panic.
    pub fn open_with(dir: impl AsRef<Path>, cfg: StoreConfig) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        let splits = ShardsFile::<K>::read(&*cfg.vfs, dir)?.splits;
        if !splits.windows(2).all(|w| w[0] < w[1]) {
            return Err(StoreError::Corrupt(
                "shards file splits are not strictly increasing".into(),
            ));
        }
        let shards = (0..splits.len() + 1)
            .map(|i| DynamicMap::open_with(dir.join(shard_dir_name(i)), cfg.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            splits: Arc::new(splits),
            shards,
        })
    }
}

impl<K, V> ShardedMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// `true` iff every shard logs its mutations to a store directory.
    pub fn is_persistent(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(DynamicMap::is_persistent)
    }

    /// Fsync every shard's WAL; on return every applied mutation is
    /// crash-durable regardless of the configured fsync policy. A no-op
    /// `Ok` on a non-persistent map.
    ///
    /// # Errors
    /// The first shard's [`StoreError`], if any is poisoned or fails to
    /// sync (remaining shards are still flushed).
    pub fn flush(&mut self) -> Result<(), StoreError> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Err(e) = shard.flush() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// The first poisoned shard's latched storage error, if any. While
    /// a shard is poisoned, its mutations are rejected and its reads
    /// keep serving the in-memory state.
    pub fn store_error(&self) -> Option<StoreError> {
        self.shards.iter().find_map(DynamicMap::store_error)
    }

    /// Total crash-durable WAL records across all shards since their
    /// engines were attached; see [`DynamicMap::acked_records`].
    pub fn acked_records(&self) -> u64 {
        self.shards.iter().map(DynamicMap::acked_records).sum()
    }
}

/// The per-shard read surface the range-partitioned read core is
/// generic over — implemented by live shards ([`DynamicMap`]) and
/// frozen ones ([`Frozen`]), so [`ShardedMap`] and [`ShardedFrozen`]
/// share every routing decision, offset sum, and scatter in one place
/// ([`RangeView`]).
trait ShardRead<K, V> {
    fn len(&self) -> usize;
    fn get(&self, key: &K) -> Option<&V>;
    fn rank(&self, key: &K) -> usize;
    fn lower_bound(&self, key: &K) -> Option<(&K, &V)>;
    fn successor(&self, key: &K) -> Option<(&K, &V)>;
    fn predecessor(&self, key: &K) -> Option<(&K, &V)>;
    fn batch_get_ref(&self, keys: &[&K]) -> Vec<Option<&V>>;
    fn batch_rank_ref(&self, keys: &[&K]) -> Vec<usize>;
}

impl<K, V> ShardRead<K, V> for DynamicMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn len(&self) -> usize {
        DynamicMap::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        DynamicMap::get(self, key)
    }
    fn rank(&self, key: &K) -> usize {
        DynamicMap::rank(self, key)
    }
    fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        DynamicMap::lower_bound(self, key)
    }
    fn successor(&self, key: &K) -> Option<(&K, &V)> {
        DynamicMap::successor(self, key)
    }
    fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        DynamicMap::predecessor(self, key)
    }
    fn batch_get_ref(&self, keys: &[&K]) -> Vec<Option<&V>> {
        DynamicMap::batch_get_ref(self, keys)
    }
    fn batch_rank_ref(&self, keys: &[&K]) -> Vec<usize> {
        DynamicMap::batch_rank_ref(self, keys)
    }
}

impl<K, V> ShardRead<K, V> for Frozen<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync,
{
    fn len(&self) -> usize {
        Frozen::len(self)
    }
    fn get(&self, key: &K) -> Option<&V> {
        Frozen::get(self, key)
    }
    fn rank(&self, key: &K) -> usize {
        Frozen::rank(self, key)
    }
    fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        Frozen::lower_bound(self, key)
    }
    fn successor(&self, key: &K) -> Option<(&K, &V)> {
        Frozen::successor(self, key)
    }
    fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        Frozen::predecessor(self, key)
    }
    fn batch_get_ref(&self, keys: &[&K]) -> Vec<Option<&V>> {
        Frozen::batch_get_ref(self, keys)
    }
    fn batch_rank_ref(&self, keys: &[&K]) -> Vec<usize> {
        Frozen::batch_rank_ref(self, keys)
    }
}

/// The single implementation of every range-partitioned read — scalar
/// routing, global-rank offset sums, the
/// partition-by-reference → parallel per-shard → scatter skeleton, and
/// the empty-shard walks — borrowed over any slice of [`ShardRead`]
/// shards. [`ShardedMap`] instantiates it with live [`DynamicMap`]s,
/// [`ShardedFrozen`] with per-shard [`Frozen`] snapshots.
struct RangeView<'a, K, S> {
    splits: &'a [K],
    shards: &'a [S],
}

impl<'a, K, S> RangeView<'a, K, S>
where
    K: Ord + Sync,
    S: Sync,
{
    fn shard_of(&self, key: &K) -> usize {
        shard_of_key(self.splits, key)
    }

    fn len<V>(&self) -> usize
    where
        S: ShardRead<K, V>,
    {
        self.shards.iter().map(ShardRead::len).sum()
    }

    fn is_empty<V>(&self) -> bool
    where
        S: ShardRead<K, V>,
    {
        self.shards.iter().all(|s| s.len() == 0)
    }

    fn get<V>(&self, key: &K) -> Option<&'a V>
    where
        S: ShardRead<K, V>,
    {
        debug_assert_valid_splits(self.splits);
        self.shards[self.shard_of(key)].get(key)
    }

    fn rank<V>(&self, key: &K) -> usize
    where
        S: ShardRead<K, V>,
    {
        debug_assert_valid_splits(self.splits);
        let i = self.shard_of(key);
        let below: usize = self.shards[..i].iter().map(ShardRead::len).sum();
        below + self.shards[i].rank(key)
    }

    fn range_count<V>(&self, lo: &K, hi: &K) -> usize
    where
        S: ShardRead<K, V>,
    {
        if lo >= hi {
            return 0;
        }
        self.rank(hi).saturating_sub(self.rank(lo))
    }

    fn lower_bound<V>(&self, key: &K) -> Option<(&'a K, &'a V)>
    where
        S: ShardRead<K, V>,
    {
        debug_assert_valid_splits(self.splits);
        let i = self.shard_of(key);
        self.shards[i]
            .lower_bound(key)
            .or_else(|| self.first_live_after_shard(i))
    }

    fn successor<V>(&self, key: &K) -> Option<(&'a K, &'a V)>
    where
        S: ShardRead<K, V>,
    {
        debug_assert_valid_splits(self.splits);
        let i = self.shard_of(key);
        self.shards[i]
            .successor(key)
            .or_else(|| self.first_live_after_shard(i))
    }

    fn predecessor<V>(&self, key: &K) -> Option<(&'a K, &'a V)>
    where
        S: ShardRead<K, V>,
    {
        debug_assert_valid_splits(self.splits);
        let i = self.shard_of(key);
        self.shards[i]
            .predecessor(key)
            .or_else(|| self.last_live_before_shard(i))
    }

    fn batch_get<V>(&self, keys: &[K]) -> Vec<Option<&'a V>>
    where
        S: ShardRead<K, V>,
        V: Sync,
    {
        self.fan_out(keys, |i, routed| self.shards[i].batch_get_ref(routed))
    }

    fn batch_rank<V>(&self, keys: &[K]) -> Vec<usize>
    where
        S: ShardRead<K, V>,
    {
        let offsets = self.offsets();
        self.fan_out(keys, |i, routed| {
            let mut ranks = self.shards[i].batch_rank_ref(routed);
            for r in &mut ranks {
                *r += offsets[i];
            }
            ranks
        })
    }

    fn batch_range_count<V>(&self, ranges: &[(K, K)]) -> Vec<usize>
    where
        S: ShardRead<K, V>,
    {
        // Flatten the endpoints by reference (no key clones), rank them
        // all in one routed fan-out, difference per pair.
        let offsets = self.offsets();
        let mut flat: Vec<&K> = Vec::with_capacity(2 * ranges.len());
        for (lo, hi) in ranges {
            flat.push(lo);
            flat.push(hi);
        }
        let ranks = self.fan_out_refs(&flat, |i, routed| {
            let mut ranks = self.shards[i].batch_rank_ref(routed);
            for r in &mut ranks {
                *r += offsets[i];
            }
            ranks
        });
        ranges
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                if lo >= hi {
                    0
                } else {
                    ranks[2 * i + 1].saturating_sub(ranks[2 * i])
                }
            })
            .collect()
    }

    /// Cumulative live-key counts below each shard (the global-rank
    /// offsets).
    fn offsets<V>(&self) -> Vec<usize>
    where
        S: ShardRead<K, V>,
    {
        let mut offsets = Vec::with_capacity(self.shards.len());
        let mut below = 0usize;
        for shard in self.shards {
            offsets.push(below);
            below += shard.len();
        }
        offsets
    }

    /// The batched-query skeleton shared by every fan-out read:
    /// partition `keys` per shard **by reference**
    /// ([`partition_batch_ref`] — routing never clones a key), run
    /// `per_shard(i, sub_batch)` for every non-empty sub-batch in
    /// parallel (the sub-batches are disjoint), and scatter the
    /// per-shard results back into input order. The split vector is
    /// debug-validated **once here**, not per routed item.
    fn fan_out<R, F>(&self, keys: &[K], per_shard: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[&K]) -> Vec<R> + Sync,
    {
        debug_assert_valid_splits(self.splits);
        let parts = partition_batch_ref(keys, self.shards.len(), |k| self.shard_of(k));
        self.run_parts(keys.len(), parts, per_shard)
    }

    /// [`RangeView::fan_out`] for an already-borrowed batch (partition
    /// over `&K` items copies references, never keys).
    fn fan_out_refs<R, F>(&self, keys: &[&K], per_shard: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[&K]) -> Vec<R> + Sync,
    {
        debug_assert_valid_splits(self.splits);
        let parts = partition_batch(keys, self.shards.len(), |k| self.shard_of(k));
        self.run_parts(keys.len(), parts, per_shard)
    }

    fn run_parts<'k, R, F>(
        &self,
        len: usize,
        parts: Vec<(Vec<usize>, Vec<&'k K>)>,
        per_shard: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[&'k K]) -> Vec<R> + Sync,
        'a: 'k,
    {
        let mut results: Vec<Vec<R>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        rayon::scope(|s| {
            for (i, out) in results.iter_mut().enumerate() {
                let routed = &parts[i].1;
                if routed.is_empty() {
                    continue;
                }
                let per_shard = &per_shard;
                s.spawn(move |_| *out = per_shard(i, routed));
            }
        });
        scatter_to_input_order(len, parts.into_iter().map(|(idx, _)| idx).zip(results))
    }

    /// Minimum live entry of the first non-empty shard after `i`.
    fn first_live_after_shard<V>(&self, i: usize) -> Option<(&'a K, &'a V)>
    where
        S: ShardRead<K, V>,
    {
        for j in i + 1..self.shards.len() {
            // Every key in shard j is ≥ its lower boundary, so a
            // lower_bound there is the shard's minimum entry.
            if let Some(hit) = self.shards[j].lower_bound(&self.splits[j - 1]) {
                return Some(hit);
            }
        }
        None
    }

    /// Maximum live entry of the last non-empty shard before `i`.
    fn last_live_before_shard<V>(&self, i: usize) -> Option<(&'a K, &'a V)>
    where
        S: ShardRead<K, V>,
    {
        for j in (0..i).rev() {
            // Every key in shard j is < its upper boundary, so a
            // predecessor there is the shard's maximum entry.
            if let Some(hit) = self.shards[j].predecessor(&self.splits[j]) {
                return Some(hit);
            }
        }
        None
    }
}

/// An immutable composite snapshot of a [`ShardedMap`]: one [`Frozen`]
/// per shard plus the shared split vector, behind the whole read API
/// (scalar, order statistics, and the parallel batched fan-outs).
///
/// Cheap to clone (`Arc` bumps), `Send + Sync` when the key and value
/// types are, and independent of the writer: compactions that retire
/// the referenced runs only drop refcounts.
///
/// **Coherence**: a snapshot from [`ShardedMap::snapshot`] is a
/// globally-consistent cut (no write can interleave — see there). A
/// snapshot from [`ShardedReader::snapshot`] is consistent **per
/// shard** only; see that method for the contract.
pub struct ShardedFrozen<K, V> {
    splits: Arc<Vec<K>>,
    shards: Vec<Frozen<K, V>>,
}

impl<K, V> Clone for ShardedFrozen<K, V> {
    fn clone(&self) -> Self {
        Self {
            splits: Arc::clone(&self.splits),
            shards: self.shards.clone(),
        }
    }
}

impl<K, V> ShardedFrozen<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync,
{
    fn view(&self) -> RangeView<'_, K, Frozen<K, V>> {
        RangeView {
            splits: &self.splits,
            shards: &self.shards,
        }
    }

    /// Number of shards in the snapshot.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of live keys across all shards.
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` iff no key is live in any shard.
    pub fn is_empty(&self) -> bool {
        self.view().is_empty()
    }

    /// See [`ShardedMap::get`].
    pub fn get(&self, key: &K) -> Option<&V> {
        self.view().get(key)
    }

    /// See [`ShardedMap::contains_key`].
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// See [`ShardedMap::rank`].
    pub fn rank(&self, key: &K) -> usize {
        self.view().rank(key)
    }

    /// See [`ShardedMap::range_count`] (reversed bounds yield 0).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.view().range_count(lo, hi)
    }

    /// See [`ShardedMap::lower_bound`].
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.view().lower_bound(key)
    }

    /// See [`ShardedMap::successor`].
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().successor(key)
    }

    /// See [`ShardedMap::predecessor`].
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().predecessor(key)
    }

    /// See [`ShardedMap::batch_get`].
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.view().batch_get(keys)
    }

    /// See [`ShardedMap::batch_rank`].
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.view().batch_rank(keys)
    }

    /// See [`ShardedMap::batch_range_count`].
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.view().batch_range_count(ranges)
    }
}

/// A cloneable handle for observing a [`ShardedMap`] from threads that
/// do not own it, layered on the per-shard [`Reader`] cells. Obtain it
/// with [`ShardedMap::reader`] **before** handing the map to a writer
/// thread.
///
/// # Examples
/// ```
/// use implicit_search_trees::{Layout, ShardedMap};
///
/// let keys: Vec<u64> = (0..1000).collect();
/// let vals = keys.clone();
/// let mut m = ShardedMap::build(keys, vals, Layout::Veb, 4).unwrap();
/// let reader = m.reader();
///
/// let writer = std::thread::spawn(move || {
///     for k in 0..500u64 {
///         m.remove(&k);
///     }
///     m
/// });
/// // Concurrently, any thread can query a coherent composite snapshot.
/// let snap = reader.snapshot();
/// assert!(snap.len() <= 1000);
/// assert_eq!(snap.rank(&0), 0);
/// let m = writer.join().unwrap();
/// assert_eq!(m.len(), 500);
/// ```
pub struct ShardedReader<K, V> {
    splits: Arc<Vec<K>>,
    readers: Vec<Reader<K, V>>,
}

impl<K, V> Clone for ShardedReader<K, V> {
    fn clone(&self) -> Self {
        Self {
            splits: Arc::clone(&self.splits),
            readers: self.readers.clone(),
        }
    }
}

impl<K, V> ShardedReader<K, V> {
    /// The latest published composite snapshot: one [`Reader::snapshot`]
    /// per shard, assembled under the shared split vector.
    ///
    /// **The honest coherence contract.** Each per-shard snapshot is a
    /// prefix of that shard's operation sequence (never going
    /// backwards across successive calls, lag bounded by that shard's
    /// `buffer_cap` — see [`DynamicMap::reader`]), and every answer the
    /// composite gives is exact over that combination of prefixes. But
    /// the per-shard cells are read one after another while a writer
    /// may be mutating: the cuts are **per shard, not one global
    /// instant**. A cross-shard `range_count` can therefore combine
    /// shard states that never coexisted — e.g. counting a key batch
    /// whose shard-3 half was already applied while its shard-1 half
    /// was not. Writers that need tick-aligned cuts (the `ist-serve`
    /// coalescer) take [`ShardedMap::snapshot`] between batches
    /// instead, where the `&self`/`&mut self` borrow rules make global
    /// consistency free.
    pub fn snapshot(&self) -> ShardedFrozen<K, V> {
        ShardedFrozen {
            splits: Arc::clone(&self.splits),
            shards: self.readers.iter().map(Reader::snapshot).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with_gaps() -> ShardedMap<u64, u64> {
        // Shards: (..10), [10, 20), [20, ..); the middle shard stays
        // empty so order queries must walk across it.
        let mut m: ShardedMap<u64, u64> = ShardedMap::with_splits(vec![10, 20], Layout::Veb);
        for k in [2u64, 5, 25, 30] {
            m.insert(k, k * 100);
        }
        m
    }

    #[test]
    fn routing_and_global_order_statistics() {
        let m = map_with_gaps();
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.shard_lens(), vec![2, 0, 2]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.rank(&0), 0);
        assert_eq!(m.rank(&25), 2);
        assert_eq!(m.rank(&100), 4);
        assert_eq!(m.range_count(&3, &26), 2); // straddles all three shards
        assert_eq!(m.range_count(&26, &3), 0); // reversed: defined as 0
    }

    #[test]
    fn order_queries_cross_empty_shards() {
        let m = map_with_gaps();
        // Successor of 5 lives two shards to the right.
        assert_eq!(m.successor(&5), Some((&25, &2500)));
        assert_eq!(m.lower_bound(&11), Some((&25, &2500)));
        // Predecessor of 25 lives two shards to the left.
        assert_eq!(m.predecessor(&25), Some((&5, &500)));
        assert_eq!(m.predecessor(&2), None);
        assert_eq!(m.successor(&30), None);
    }

    #[test]
    fn batches_scatter_back_in_input_order() {
        let m = map_with_gaps();
        let keys = [30u64, 2, 11, 25, 5, 2];
        assert_eq!(
            m.batch_get(&keys),
            vec![
                Some(&3000),
                Some(&200),
                None,
                Some(&2500),
                Some(&500),
                Some(&200)
            ]
        );
        assert_eq!(m.batch_rank(&keys), vec![3, 0, 2, 2, 1, 0]);
        assert_eq!(
            m.batch_range_count(&[(0, 100), (26, 3), (5, 26)]),
            vec![4, 0, 2] // [5, 26) holds {5, 25}
        );
    }

    #[test]
    fn bulk_build_balances_and_dedups() {
        let keys: Vec<u64> = (0..1000).chain(0..1000).collect(); // every key twice
        let vals: Vec<u64> = (0..2000).collect();
        let m = ShardedMap::build(keys, vals, Layout::Bst, 4).unwrap();
        assert_eq!(m.len(), 1000);
        assert_eq!(m.shard_count(), 4);
        let lens = m.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 1000);
        assert!(
            lens.iter().all(|&l| l == 250),
            "equal-count splits: {lens:?}"
        );
        // Last duplicate wins.
        assert_eq!(m.get(&0), Some(&1000));
        assert_eq!(m.rank(&999), 999);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_are_rejected() {
        let _ = ShardedMap::<u64, u64>::with_splits(vec![20, 10], Layout::Veb);
    }

    /// The composite snapshot answers every query exactly like the live
    /// map it froze, including cross-shard order statistics, and stays
    /// pinned while the live map moves on.
    #[test]
    fn sharded_snapshot_matches_live_map_then_stays_pinned() {
        let mut m = map_with_gaps();
        let snap = m.snapshot();
        let keys = [30u64, 2, 11, 25, 5, 2];
        assert_eq!(snap.len(), m.len());
        assert_eq!(snap.batch_get(&keys), m.batch_get(&keys));
        assert_eq!(snap.batch_rank(&keys), m.batch_rank(&keys));
        assert_eq!(
            snap.batch_range_count(&[(0, 100), (26, 3), (5, 26)]),
            m.batch_range_count(&[(0, 100), (26, 3), (5, 26)])
        );
        assert_eq!(snap.successor(&5), Some((&25, &2500)));
        assert_eq!(snap.predecessor(&25), Some((&5, &500)));

        m.insert(11, 1100); // lands in the empty middle shard
        m.remove(&2);
        assert_eq!(m.len(), 4);
        assert_eq!(snap.len(), 4); // pinned: pre-write state
        assert_eq!(snap.get(&11), None);
        assert_eq!(snap.get(&2), Some(&200));
        assert_eq!(snap.rank(&100), 4);
    }

    #[test]
    fn reader_snapshot_publishes_current_state() {
        let mut m = map_with_gaps();
        let reader = m.reader();
        let snap = reader.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.get(&25), Some(&2500));
        assert_eq!(snap.rank(&26), 3);
        // A fresh reader() re-publishes the post-write state.
        m.insert(12, 1200);
        let snap2 = m.reader().snapshot();
        assert_eq!(snap2.len(), 5);
        assert_eq!(snap2.get(&12), Some(&1200));
        // The old snapshot is unaffected.
        assert_eq!(snap.len(), 4);
    }

    /// Regression for the serial shard drain: `quiesce` and
    /// `compact_buffers` must leave observable state unchanged while
    /// actually draining every shard (they now run shard-parallel under
    /// the rayon-shim scope).
    #[test]
    fn parallel_quiesce_and_compact_preserve_state_and_drain() {
        let keys: Vec<u64> = (0..4000).collect();
        let vals: Vec<u64> = (0..4000).map(|v| v * 7).collect();
        let mut m = ShardedMap::build_for_kind(
            keys,
            vals,
            QueryKind::Veb,
            Algorithm::CycleLeader,
            32, // tiny buffers: constant seals and merges
            4,
        )
        .unwrap()
        .with_compaction_mode(CompactionMode::Background);

        // Churn every shard so seals and background merges are in
        // flight when the drains run.
        for k in 0..2000u64 {
            if k % 5 == 0 {
                m.remove(&(2 * k));
            } else {
                m.insert(2 * k + 1, k);
            }
        }
        let before_len = m.len();
        let probe: Vec<u64> = (0..800).map(|i| i * 5).collect();
        let before_get: Vec<Option<u64>> = m.batch_get(&probe).iter().map(|v| v.copied()).collect();
        let before_rank = m.batch_rank(&probe);

        m.compact_buffers();
        m.quiesce();

        assert_eq!(m.len(), before_len, "quiesce changed the live count");
        let after_get: Vec<Option<u64>> = m.batch_get(&probe).iter().map(|v| v.copied()).collect();
        assert_eq!(after_get, before_get, "quiesce changed get answers");
        assert_eq!(m.batch_rank(&probe), before_rank, "quiesce changed ranks");
        assert_eq!(m.sealed_runs(), 0, "quiesce left sealed runs behind");
        assert!(!m.compaction_in_flight(), "quiesce left a merge in flight");
    }
}
