//! # ist-shard
//!
//! [`ShardedMap`]: a **key-range-sharded** serving facade over
//! per-shard [`DynamicMap`]s — the multi-writer-scale front-end of the
//! serving story.
//!
//! ## Range partition
//!
//! A `ShardedMap` is `splits.len() + 1` shards under a sorted,
//! strictly-increasing split-key vector: shard `0` owns keys below
//! `splits[0]`, shard `i` owns `[splits[i-1], splits[i])`, the last
//! shard owns everything from the last split up
//! ([`ist_query::route::shard_of_key`]). Each shard is a full
//! [`DynamicMap`]: its own write buffer, sealed L0 runs, tiers, and
//! background compaction worker — so shards seal and merge
//! independently, and a hot key range never stalls writes elsewhere.
//!
//! ## Why the answers stay exact
//!
//! The **range-partition invariant** — every key in shard `j < i` is
//! strictly smaller than every key in shard `i` — turns global order
//! statistics into sums of per-shard answers:
//!
//! `rank(k) = Σ_{j < shard(k)} len_j + rank_{shard(k)}(k)`
//!
//! and `range_count` is a rank difference, so both are exact for the
//! same reason the per-shard answers are (the weight machinery in
//! [`ist_dynamic::dynamic`]). Order queries probe the home shard and
//! walk outward only across empty neighbors.
//!
//! ## Batched queries
//!
//! [`ShardedMap::batch_get`] / [`ShardedMap::batch_rank`] /
//! [`ShardedMap::batch_range_count`] partition the batch per shard
//! ([`ist_query::route::partition_batch`]), drive every shard's
//! software-pipelined descent engine **in parallel** (the sub-batches
//! are disjoint), and scatter the results back into input order
//! ([`ist_query::route::scatter_to_input_order`]) — bit-identical to
//! what one unsharded [`DynamicMap`] would answer, which
//! `tests/sharded_differential.rs` (repository root) checks against
//! both a `BTreeMap` oracle and a single-map mirror.

use ist_core::{Algorithm, Error, Layout};
use ist_dynamic::{
    default_kind_for_layout, CompactionMode, CompactionPolicy, DynamicMap, DEFAULT_BUFFER_CAP,
};
use ist_query::route::{partition_batch, partition_owned, scatter_to_input_order, shard_of_key};
use ist_query::QueryKind;

/// A key-range-sharded map: range-partitioned shards, each a
/// [`DynamicMap`] with its own buffer and background compaction, behind
/// one exact read/write API.
///
/// Semantics mirror a single [`DynamicMap`] (one live value per key,
/// `insert` overwrites, `remove` deletes, order statistics see only
/// live keys); the differential suite pins batch results bit-identical
/// to the unsharded map.
///
/// # Examples
/// ```
/// use implicit_search_trees::{Layout, ShardedMap};
///
/// // Four shards at equal-count boundaries of the loaded data.
/// let keys: Vec<u64> = (0..10_000).map(|x| 3 * x).collect();
/// let vals: Vec<u64> = (0..10_000).collect();
/// let mut m = ShardedMap::build(keys, vals, Layout::Veb, 4).unwrap();
/// assert_eq!(m.shard_count(), 4);
/// assert_eq!(m.len(), 10_000);
///
/// m.insert(1, 999); // routed to the owning shard
/// assert_eq!(m.get(&1), Some(&999));
/// assert_eq!(m.rank(&1), 1); // global: one key (0) strictly below
///
/// // Batched reads straddle shard boundaries transparently.
/// let got = m.batch_get(&[0, 1, 29_997, 5]);
/// assert_eq!(got, vec![Some(&0), Some(&999), Some(&9_999), None]);
/// assert_eq!(m.range_count(&0, &u64::MAX), 10_001);
/// ```
pub struct ShardedMap<K, V> {
    /// Sorted, strictly increasing; shard `i` owns `[splits[i-1],
    /// splits[i])` with open ends at the extremes.
    splits: Vec<K>,
    /// `shards.len() == splits.len() + 1`, ordered by key range.
    shards: Vec<DynamicMap<K, V>>,
}

impl<K, V> ShardedMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map with explicit split keys (`splits.len() + 1`
    /// shards), each shard a default-configured [`DynamicMap`] for
    /// `layout`. An empty `splits` gives a single shard.
    ///
    /// # Panics
    /// Panics if `splits` is not sorted and strictly increasing, or on
    /// `Layout::Btree { b: 0 }`.
    pub fn with_splits(splits: Vec<K>, layout: Layout) -> Self {
        Self::validate_splits(&splits);
        let shards = (0..splits.len() + 1)
            .map(|_| DynamicMap::new(layout))
            .collect();
        Self { splits, shards }
    }

    /// [`ShardedMap::with_splits`] with full per-shard control:
    /// explicit query descent, construction algorithm, and write-buffer
    /// capacity (each shard gets its own `buffer_cap`-entry buffer).
    ///
    /// # Panics
    /// Panics on unsorted `splits` or the invalid configurations
    /// [`DynamicMap::with_config`] rejects.
    pub fn with_splits_config(
        splits: Vec<K>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
    ) -> Self {
        Self::validate_splits(&splits);
        let shards = (0..splits.len() + 1)
            .map(|_| DynamicMap::with_config(kind, algorithm, buffer_cap))
            .collect();
        Self { splits, shards }
    }

    /// The one home of the split-vector precondition both explicit
    /// constructors enforce (bulk loaders construct splits sorted).
    fn validate_splits(splits: &[K]) {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "splits must be sorted and strictly increasing"
        );
    }

    /// Bulk-load from unsorted `(keys, values)` pairs (duplicate keys:
    /// the **last** pair wins, like [`DynamicMap::build`]), choosing
    /// split keys at equal-count boundaries of the loaded data and
    /// building one bulk run per shard. Duplicate-heavy data can
    /// collapse boundaries, yielding fewer than `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths or
    /// `num_shards == 0`.
    pub fn build(
        keys: Vec<K>,
        values: Vec<V>,
        layout: Layout,
        num_shards: usize,
    ) -> Result<Self, Error> {
        Self::build_for_kind(
            keys,
            values,
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
            DEFAULT_BUFFER_CAP,
            num_shards,
        )
    }

    /// [`ShardedMap::build`] with explicit descent, algorithm, and
    /// per-shard buffer capacity.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths,
    /// `num_shards == 0`, or on the invalid configurations
    /// [`DynamicMap::with_config`] rejects.
    pub fn build_for_kind(
        keys: Vec<K>,
        values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
        num_shards: usize,
    ) -> Result<Self, Error> {
        let (splits, parts) = Self::partition_bulk(keys, values, num_shards);
        let shards = parts
            .into_iter()
            // The global pre-pass sorted and deduped; every partition
            // is sorted with distinct keys, so shards skip both.
            .map(|(k, v)| DynamicMap::build_presorted(k, v, kind, algorithm, buffer_cap))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { splits, shards })
    }

    /// Builder-style [`CompactionMode`] override applied to every shard
    /// (they default to [`CompactionMode::Background`]).
    #[must_use]
    pub fn with_compaction_mode(mut self, mode: CompactionMode) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_compaction_mode(mode))
            .collect();
        self
    }

    /// Builder-style [`CompactionPolicy`] override applied to every
    /// shard; see [`DynamicMap::with_policy`]. Observable answers are
    /// identical under every policy — this trades write amplification
    /// against read fan-out, per shard.
    ///
    /// # Panics
    /// Panics on an invalid policy (tiered `fanout == 0`, leveled
    /// `fanout < 2`).
    #[must_use]
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|s| s.with_policy(policy))
            .collect();
        self
    }

    /// Dedup (last wins), pick equal-count splits, and partition the
    /// pairs by the resulting ranges — shared by both bulk loaders.
    #[allow(clippy::type_complexity)]
    fn partition_bulk(
        keys: Vec<K>,
        values: Vec<V>,
        num_shards: usize,
    ) -> (Vec<K>, Vec<(Vec<K>, Vec<V>)>) {
        assert_eq!(
            keys.len(),
            values.len(),
            "ShardedMap::build: {} keys but {} values",
            keys.len(),
            values.len()
        );
        assert!(num_shards >= 1, "num_shards must be at least 1");
        let mut pairs: Vec<(K, V)> = keys.into_iter().zip(values).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable: later duplicate stays later
        pairs.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(later, kept); // keep the later pair's value
                true
            } else {
                false
            }
        });
        // Equal-count boundaries over the (now distinct) sorted keys.
        let mut splits: Vec<K> = Vec::with_capacity(num_shards.saturating_sub(1));
        for i in 1..num_shards {
            let idx = i * pairs.len() / num_shards;
            if idx == 0 || idx >= pairs.len() {
                continue;
            }
            let candidate = &pairs[idx].0;
            if splits.last().is_none_or(|last| last < candidate) {
                splits.push(candidate.clone());
            }
        }
        let mut parts: Vec<(Vec<K>, Vec<V>)> = vec![(Vec::new(), Vec::new()); splits.len() + 1];
        for (k, v) in pairs {
            let s = shard_of_key(&splits, &k);
            parts[s].0.push(k);
            parts[s].1.push(v);
        }
        (splits, parts)
    }

    // ----- routing -----

    /// Index of the shard owning `key` (the range-partition router).
    pub fn shard_of(&self, key: &K) -> usize {
        shard_of_key(&self.splits, key)
    }

    /// The split keys (shard `i` owns `[splits[i-1], splits[i])`).
    pub fn splits(&self) -> &[K] {
        &self.splits
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live keys per shard, in key-range order.
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(DynamicMap::len).collect()
    }

    /// `true` while any shard has a background compaction in flight.
    pub fn compaction_in_flight(&self) -> bool {
        self.shards.iter().any(DynamicMap::compaction_in_flight)
    }

    // ----- mutation -----

    /// Insert or overwrite in the owning shard; returns `true` iff a
    /// live value for `key` was replaced. See [`DynamicMap::insert`]
    /// for the seal/compact behavior behind an overflow.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let s = self.shard_of(&key);
        self.shards[s].insert(key, value)
    }

    /// Delete from the owning shard; returns `true` iff a live value
    /// was removed.
    pub fn remove(&mut self, key: &K) -> bool {
        let s = self.shard_of(key);
        self.shards[s].remove(key)
    }

    /// Bulk insert across shards: the delta is partitioned per shard by
    /// the range router ([`ist_query::route::partition_owned`] — items
    /// moved, not cloned) and every non-empty sub-delta is applied via
    /// [`DynamicMap::batch_insert`] **in parallel** under the
    /// rayon-shim scope (shards are disjoint structures, so `&mut`
    /// access per shard is race-free by construction). Returns the
    /// total number of pairs that replaced a live value.
    ///
    /// Global-rank exactness is untouched: the range-partition
    /// invariant (every key in shard `j < i` sorts strictly below every
    /// key in shard `i`) is a property of the *router*, not of when
    /// writes land, so per-shard bulk deltas — whatever order the
    /// scope schedules them in — leave
    /// `rank(k) = Σ_{j<shard(k)} len_j + rank_{shard(k)}(k)` exact, as
    /// the sharded differential suite pins against an unsharded mirror.
    ///
    /// # Examples
    /// ```
    /// use implicit_search_trees::{Layout, ShardedMap};
    ///
    /// let mut m: ShardedMap<u64, u64> = ShardedMap::with_splits(vec![10, 20], Layout::Veb);
    /// let replaced = m.batch_insert((0..30u64).map(|k| (k, k)).collect());
    /// assert_eq!(replaced, 0);
    /// assert_eq!(m.len(), 30);
    /// assert_eq!(m.shard_lens(), vec![10, 10, 10]);
    /// ```
    pub fn batch_insert(&mut self, pairs: Vec<(K, V)>) -> usize {
        let parts = partition_owned(pairs, self.shards.len(), |(k, _)| {
            shard_of_key(&self.splits, k)
        });
        let mut counts = vec![0usize; self.shards.len()];
        rayon::scope(|s| {
            for ((shard, (_, routed)), count) in
                self.shards.iter_mut().zip(parts).zip(counts.iter_mut())
            {
                if routed.is_empty() {
                    continue;
                }
                s.spawn(move |_| *count = shard.batch_insert(routed));
            }
        });
        counts.into_iter().sum()
    }

    /// Bulk delete across shards; the delta is routed and applied
    /// shard-parallel exactly like [`ShardedMap::batch_insert`].
    /// Returns how many keys were live before the batch.
    pub fn batch_remove(&mut self, keys: &[K]) -> usize {
        let parts = partition_batch(keys, self.shards.len(), |k| shard_of_key(&self.splits, k));
        let mut counts = vec![0usize; self.shards.len()];
        rayon::scope(|s| {
            for ((shard, (_, routed)), count) in
                self.shards.iter_mut().zip(&parts).zip(counts.iter_mut())
            {
                if routed.is_empty() {
                    continue;
                }
                s.spawn(move |_| *count = shard.batch_remove(routed));
            }
        });
        counts.into_iter().sum()
    }

    /// Seal every shard's buffer and start (or complete, for inline
    /// shards) a compaction per shard; see
    /// [`DynamicMap::compact_buffer`].
    pub fn compact_buffers(&mut self) {
        for shard in &mut self.shards {
            shard.compact_buffer();
        }
    }

    /// Drain every shard's deferred compaction work; see
    /// [`DynamicMap::quiesce`]. Observable state is unchanged.
    pub fn quiesce(&mut self) {
        for shard in &mut self.shards {
            shard.quiesce();
        }
    }

    // ----- scalar reads -----

    /// Number of live keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(DynamicMap::len).sum()
    }

    /// `true` iff no key is live in any shard.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(DynamicMap::is_empty)
    }

    /// The live value under `key`, if any (one shard probe).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.shards[self.shard_of(key)].get(key)
    }

    /// `true` iff `key` is live.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of live keys strictly smaller than `key`, globally exact:
    /// whole-shard lengths below the home shard plus one in-shard rank
    /// (the range-partition invariant).
    pub fn rank(&self, key: &K) -> usize {
        let i = self.shard_of(key);
        let below: usize = self.shards[..i].iter().map(DynamicMap::len).sum();
        below + self.shards[i].rank(key)
    }

    /// Number of live keys in `[lo, hi)` across all shards. Reversed
    /// bounds (`lo > hi`) yield 0 — never a panic (the workspace-wide
    /// contract).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        if lo >= hi {
            return 0;
        }
        self.rank(hi).saturating_sub(self.rank(lo))
    }

    /// The smallest live entry with key `≥ key`, if any.
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        let i = self.shard_of(key);
        self.shards[i]
            .lower_bound(key)
            .or_else(|| self.first_live_after_shard(i))
    }

    /// The smallest live entry with key **strictly greater** than
    /// `key`, if any.
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        let i = self.shard_of(key);
        self.shards[i]
            .successor(key)
            .or_else(|| self.first_live_after_shard(i))
    }

    /// The largest live entry with key **strictly smaller** than `key`,
    /// if any.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        let i = self.shard_of(key);
        self.shards[i]
            .predecessor(key)
            .or_else(|| self.last_live_before_shard(i))
    }

    // ----- batched reads: partition → parallel per-shard → scatter -----

    /// Batched [`ShardedMap::get`]: the batch is partitioned per shard,
    /// every shard's software-pipelined engine runs in parallel on its
    /// disjoint sub-batch, and results scatter back in input order —
    /// `out[i]` is exactly `get(&keys[i])`.
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.fan_out(keys, |i, routed| self.shards[i].batch_get(routed))
    }

    /// Batched [`ShardedMap::rank`]: per-shard pipelined rank descents
    /// in parallel, each shard's results pre-offset by the summed
    /// lengths of the shards below it, scattered back in input order.
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.shards.len());
        let mut below = 0usize;
        for shard in &self.shards {
            offsets.push(below);
            below += shard.len();
        }
        self.fan_out(keys, |i, routed| {
            let mut ranks = self.shards[i].batch_rank(routed);
            for r in &mut ranks {
                *r += offsets[i];
            }
            ranks
        })
    }

    /// Per-pair [`ShardedMap::range_count`] (reversed pairs yield 0).
    /// Endpoint ranks go through [`ShardedMap::batch_rank`], so ranges
    /// straddling shard boundaries cost the same two descents as local
    /// ones.
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        let mut flat = Vec::with_capacity(2 * ranges.len());
        for (lo, hi) in ranges {
            flat.push(lo.clone());
            flat.push(hi.clone());
        }
        let ranks = self.batch_rank(&flat);
        ranges
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                if lo >= hi {
                    0
                } else {
                    ranks[2 * i + 1].saturating_sub(ranks[2 * i])
                }
            })
            .collect()
    }

    // ----- internals -----

    /// The batched-query skeleton shared by every fan-out read:
    /// partition `keys` per shard, run `per_shard(i, sub_batch)` for
    /// every non-empty sub-batch in parallel (the sub-batches are
    /// disjoint), and scatter the per-shard results back into input
    /// order.
    fn fan_out<R, F>(&self, keys: &[K], per_shard: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &[K]) -> Vec<R> + Sync,
    {
        let parts = partition_batch(keys, self.shards.len(), |k| self.shard_of(k));
        let mut results: Vec<Vec<R>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        rayon::scope(|s| {
            for (i, out) in results.iter_mut().enumerate() {
                let routed = &parts[i].1;
                if routed.is_empty() {
                    continue;
                }
                let per_shard = &per_shard;
                s.spawn(move |_| *out = per_shard(i, routed));
            }
        });
        scatter_to_input_order(
            keys.len(),
            parts.into_iter().map(|(idx, _)| idx).zip(results),
        )
    }

    /// Minimum live entry of the first non-empty shard after `i`.
    fn first_live_after_shard(&self, i: usize) -> Option<(&K, &V)> {
        for j in i + 1..self.shards.len() {
            // Every key in shard j is ≥ its lower boundary, so a
            // lower_bound there is the shard's minimum entry.
            if let Some(hit) = self.shards[j].lower_bound(&self.splits[j - 1]) {
                return Some(hit);
            }
        }
        None
    }

    /// Maximum live entry of the last non-empty shard before `i`.
    fn last_live_before_shard(&self, i: usize) -> Option<(&K, &V)> {
        for j in (0..i).rev() {
            // Every key in shard j is < its upper boundary, so a
            // predecessor there is the shard's maximum entry.
            if let Some(hit) = self.shards[j].predecessor(&self.splits[j]) {
                return Some(hit);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_with_gaps() -> ShardedMap<u64, u64> {
        // Shards: (..10), [10, 20), [20, ..); the middle shard stays
        // empty so order queries must walk across it.
        let mut m: ShardedMap<u64, u64> = ShardedMap::with_splits(vec![10, 20], Layout::Veb);
        for k in [2u64, 5, 25, 30] {
            m.insert(k, k * 100);
        }
        m
    }

    #[test]
    fn routing_and_global_order_statistics() {
        let m = map_with_gaps();
        assert_eq!(m.shard_count(), 3);
        assert_eq!(m.shard_lens(), vec![2, 0, 2]);
        assert_eq!(m.len(), 4);
        assert_eq!(m.rank(&0), 0);
        assert_eq!(m.rank(&25), 2);
        assert_eq!(m.rank(&100), 4);
        assert_eq!(m.range_count(&3, &26), 2); // straddles all three shards
        assert_eq!(m.range_count(&26, &3), 0); // reversed: defined as 0
    }

    #[test]
    fn order_queries_cross_empty_shards() {
        let m = map_with_gaps();
        // Successor of 5 lives two shards to the right.
        assert_eq!(m.successor(&5), Some((&25, &2500)));
        assert_eq!(m.lower_bound(&11), Some((&25, &2500)));
        // Predecessor of 25 lives two shards to the left.
        assert_eq!(m.predecessor(&25), Some((&5, &500)));
        assert_eq!(m.predecessor(&2), None);
        assert_eq!(m.successor(&30), None);
    }

    #[test]
    fn batches_scatter_back_in_input_order() {
        let m = map_with_gaps();
        let keys = [30u64, 2, 11, 25, 5, 2];
        assert_eq!(
            m.batch_get(&keys),
            vec![
                Some(&3000),
                Some(&200),
                None,
                Some(&2500),
                Some(&500),
                Some(&200)
            ]
        );
        assert_eq!(m.batch_rank(&keys), vec![3, 0, 2, 2, 1, 0]);
        assert_eq!(
            m.batch_range_count(&[(0, 100), (26, 3), (5, 26)]),
            vec![4, 0, 2] // [5, 26) holds {5, 25}
        );
    }

    #[test]
    fn bulk_build_balances_and_dedups() {
        let keys: Vec<u64> = (0..1000).chain(0..1000).collect(); // every key twice
        let vals: Vec<u64> = (0..2000).collect();
        let m = ShardedMap::build(keys, vals, Layout::Bst, 4).unwrap();
        assert_eq!(m.len(), 1000);
        assert_eq!(m.shard_count(), 4);
        let lens = m.shard_lens();
        assert_eq!(lens.iter().sum::<usize>(), 1000);
        assert!(
            lens.iter().all(|&l| l == 250),
            "equal-count splits: {lens:?}"
        );
        // Last duplicate wins.
        assert_eq!(m.get(&0), Some(&1000));
        assert_eq!(m.rank(&999), 999);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splits_are_rejected() {
        let _ = ShardedMap::<u64, u64>::with_splits(vec![20, 10], Layout::Veb);
    }
}
