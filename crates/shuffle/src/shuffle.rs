//! k-way perfect shuffles and un-shuffles via involutions (Yang et al.).
//!
//! **Deck convention.** The input of a k-way shuffle is the concatenation
//! of `k` decks of `m = N/k` elements each; the output interleaves them:
//! the element at position `i = l·m + j` (deck `l`, offset `j`) moves to
//! position `σ(i) = j·k + l`. The *un*-shuffle is `σ⁻¹` (it gathers the
//! residue-`l` positions into contiguous deck `l`).
//!
//! Two factorizations into involutions are used, depending on `N`:
//!
//! * `N = k^d` (**Ξ₁**): `σ = rev_k(d) ∘ rev_k(d−1)` — both factors are
//!   digit reversals, applied as two rounds of disjoint swaps.
//! * `N = k·m` for any `m` (**Ξ₂**): `σ = J_k ∘ J_1` where
//!   `J_r(i) = g · (r · (i/g)⁻¹ mod (N−1)/g)`, `g = gcd(i, N−1)`, with `0`
//!   and `N−1` fixed. Both `J_1` and `J_k` are involutions because
//!   `gcd(k, N−1) = 1` whenever `k | N`.
//!
//! The implicit B-tree construction uses the `(B+1)`-way un-shuffle (Ξ₁ on
//! a padded power size) to pull internal elements to the front, then the
//! `B`-way shuffle (Ξ₂) to regroup leaf elements into their nodes.

use ist_bits::{gcd, mod_inverse, rev_k};
use ist_perm::{apply_involution, apply_involution_par};

/// The Yang et al. `J_r` involution on `[0, n)` where `nm1 = n − 1`.
///
/// `J_r(i) = g · (r · (i/g)⁻¹ mod nm1/g)` with `g = gcd(i, nm1)`; indices
/// `0` and `nm1` are fixed points. `J_r` is an involution whenever
/// `gcd(r, nm1) = 1`.
///
/// # Examples
/// ```
/// use ist_shuffle::j_involution;
/// let n = 10u64; // k = 2, nm1 = 9
/// for i in 0..n {
///     let j = j_involution(2, n - 1, i);
///     assert_eq!(j_involution(2, n - 1, j), i); // involution
/// }
/// // J_2(J_1(i)) = 2i mod 9 on the interior:
/// for i in 1..n - 1 {
///     assert_eq!(j_involution(2, n - 1, j_involution(1, n - 1, i)), (2 * i) % 9);
/// }
/// ```
#[inline]
pub fn j_involution(r: u64, nm1: u64, i: u64) -> u64 {
    if i == 0 || i == nm1 {
        return i;
    }
    let g = gcd(i, nm1);
    let m = nm1 / g;
    let u = i / g;
    // gcd(u, m) = 1 by construction, so the inverse exists.
    let inv = mod_inverse(u, m).expect("u coprime to m");
    g * ((r % m) * inv % m)
}

fn check_pow(n: usize, k: usize) -> u32 {
    assert!(k >= 2, "k must be at least 2");
    let d = ist_bits::ilog(k as u64, n as u64);
    assert_eq!(
        (k as u64).pow(d),
        n as u64,
        "shuffle_pow requires len = k^d (len = {n}, k = {k})"
    );
    d
}

/// k-way perfect shuffle for `N = k^d` via digit-reversal involutions (Ξ₁).
///
/// Interleaves `k` concatenated decks: `A[l·m + j] → position j·k + l`.
///
/// # Panics
/// Panics unless `data.len()` is a power of `k`.
///
/// # Examples
/// ```
/// use ist_shuffle::shuffle_pow;
/// let mut v = vec![0, 1, 2, 3, 4, 5, 6, 7]; // two decks [0..4), [4..8)
/// shuffle_pow(&mut v, 2);
/// assert_eq!(v, vec![0, 4, 1, 5, 2, 6, 3, 7]);
/// ```
pub fn shuffle_pow<T>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let d = check_pow(n, k);
    let kk = k as u64;
    apply_involution(data, |i| rev_k(kk, d - 1, i as u64) as usize);
    apply_involution(data, |i| rev_k(kk, d, i as u64) as usize);
}

/// Parallel version of [`shuffle_pow`].
pub fn shuffle_pow_par<T: Send>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let d = check_pow(n, k);
    let kk = k as u64;
    apply_involution_par(data, |i| rev_k(kk, d - 1, i as u64) as usize);
    apply_involution_par(data, |i| rev_k(kk, d, i as u64) as usize);
}

/// k-way perfect **un**-shuffle for `N = k^d` (inverse of [`shuffle_pow`]):
/// gathers residue classes mod `k` into contiguous decks.
///
/// # Examples
/// ```
/// use ist_shuffle::unshuffle_pow;
/// let mut v = vec![0, 4, 1, 5, 2, 6, 3, 7];
/// unshuffle_pow(&mut v, 2);
/// assert_eq!(v, vec![0, 1, 2, 3, 4, 5, 6, 7]);
/// ```
pub fn unshuffle_pow<T>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let d = check_pow(n, k);
    let kk = k as u64;
    apply_involution(data, |i| rev_k(kk, d, i as u64) as usize);
    apply_involution(data, |i| rev_k(kk, d - 1, i as u64) as usize);
}

/// Parallel version of [`unshuffle_pow`].
pub fn unshuffle_pow_par<T: Send>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let d = check_pow(n, k);
    let kk = k as u64;
    apply_involution_par(data, |i| rev_k(kk, d, i as u64) as usize);
    apply_involution_par(data, |i| rev_k(kk, d - 1, i as u64) as usize);
}

fn check_mod(n: usize, k: usize) {
    assert!(k >= 1, "k must be positive");
    assert_eq!(
        n % k,
        0,
        "shuffle_mod requires k | len (len = {n}, k = {k})"
    );
}

/// k-way perfect shuffle for any `N` divisible by `k`, via the `J`
/// involutions (Ξ₂). Semantics identical to [`shuffle_pow`].
///
/// # Examples
/// ```
/// use ist_shuffle::shuffle_mod;
/// let mut v = vec![0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23]; // 3 decks of 4
/// shuffle_mod(&mut v, 3);
/// assert_eq!(v, vec![0, 10, 20, 1, 11, 21, 2, 12, 22, 3, 13, 23]);
/// ```
pub fn shuffle_mod<T>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 || k == 1 {
        return;
    }
    check_mod(n, k);
    let nm1 = (n - 1) as u64;
    let kk = k as u64;
    apply_involution(data, |i| j_involution(1, nm1, i as u64) as usize);
    apply_involution(data, |i| j_involution(kk, nm1, i as u64) as usize);
}

/// Parallel version of [`shuffle_mod`].
pub fn shuffle_mod_par<T: Send>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 || k == 1 {
        return;
    }
    check_mod(n, k);
    let nm1 = (n - 1) as u64;
    let kk = k as u64;
    apply_involution_par(data, |i| j_involution(1, nm1, i as u64) as usize);
    apply_involution_par(data, |i| j_involution(kk, nm1, i as u64) as usize);
}

/// k-way perfect **un**-shuffle for any `N` divisible by `k` (inverse of
/// [`shuffle_mod`]).
///
/// # Examples
/// ```
/// use ist_shuffle::unshuffle_mod;
/// let mut v = vec![0, 10, 20, 1, 11, 21, 2, 12, 22, 3, 13, 23];
/// unshuffle_mod(&mut v, 3);
/// assert_eq!(v, vec![0, 1, 2, 3, 10, 11, 12, 13, 20, 21, 22, 23]);
/// ```
pub fn unshuffle_mod<T>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 || k == 1 {
        return;
    }
    check_mod(n, k);
    let nm1 = (n - 1) as u64;
    let kk = k as u64;
    apply_involution(data, |i| j_involution(kk, nm1, i as u64) as usize);
    apply_involution(data, |i| j_involution(1, nm1, i as u64) as usize);
}

/// Parallel version of [`unshuffle_mod`].
pub fn unshuffle_mod_par<T: Send>(data: &mut [T], k: usize) {
    let n = data.len();
    if n <= 1 || k == 1 {
        return;
    }
    check_mod(n, k);
    let nm1 = (n - 1) as u64;
    let kk = k as u64;
    apply_involution_par(data, |i| j_involution(kk, nm1, i as u64) as usize);
    apply_involution_par(data, |i| j_involution(1, nm1, i as u64) as usize);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Out-of-place reference shuffle used as the oracle.
    fn reference_shuffle<T: Clone>(data: &[T], k: usize) -> Vec<T> {
        let n = data.len();
        let m = n / k;
        let mut out = data.to_vec();
        for l in 0..k {
            for j in 0..m {
                out[j * k + l] = data[l * m + j].clone();
            }
        }
        out
    }

    #[test]
    fn pow_matches_reference() {
        for k in [2usize, 3, 4, 5] {
            for d in 1..=5u32 {
                let n = k.pow(d);
                let orig: Vec<usize> = (0..n).collect();
                let mut v = orig.clone();
                shuffle_pow(&mut v, k);
                assert_eq!(v, reference_shuffle(&orig, k), "k={k} d={d}");
                unshuffle_pow(&mut v, k);
                assert_eq!(v, orig, "k={k} d={d} roundtrip");
            }
        }
    }

    #[test]
    fn mod_matches_reference() {
        for k in [2usize, 3, 5, 8, 9] {
            for m in [1usize, 2, 3, 7, 16, 33, 100] {
                let n = k * m;
                let orig: Vec<usize> = (0..n).collect();
                let mut v = orig.clone();
                shuffle_mod(&mut v, k);
                assert_eq!(v, reference_shuffle(&orig, k), "k={k} m={m}");
                unshuffle_mod(&mut v, k);
                assert_eq!(v, orig, "k={k} m={m} roundtrip");
            }
        }
    }

    #[test]
    fn pow_and_mod_agree_on_power_sizes() {
        for k in [2usize, 3, 4] {
            for d in 1..=4u32 {
                let n = k.pow(d);
                let mut a: Vec<usize> = (0..n).collect();
                let mut b = a.clone();
                shuffle_pow(&mut a, k);
                shuffle_mod(&mut b, k);
                assert_eq!(a, b, "k={k} d={d}");
            }
        }
    }

    #[test]
    fn par_matches_seq() {
        let k = 3usize;
        let n = k.pow(9); // 19683
        let mut a: Vec<u64> = (0..n as u64).collect();
        let mut b = a.clone();
        shuffle_pow(&mut a, k);
        shuffle_pow_par(&mut b, k);
        assert_eq!(a, b);
        unshuffle_pow_par(&mut b, k);
        assert!(b.iter().copied().eq(0..n as u64));

        let n = k * 6821;
        let mut a: Vec<u64> = (0..n as u64).collect();
        let mut b = a.clone();
        unshuffle_mod(&mut a, k);
        unshuffle_mod_par(&mut b, k);
        assert_eq!(a, b);
        shuffle_mod_par(&mut b, k);
        assert!(b.iter().copied().eq(0..n as u64));
    }

    #[test]
    fn j_involutions_compose_to_shuffle_map() {
        // J_k(J_1(i)) = k*i mod (n-1) on the interior.
        for (k, n) in [(2u64, 16u64), (3, 27), (4, 20), (7, 49)] {
            let nm1 = n - 1;
            for i in 1..nm1 {
                let s = j_involution(k, nm1, j_involution(1, nm1, i));
                assert_eq!(s, k * i % nm1, "k={k} n={n} i={i}");
            }
            assert_eq!(j_involution(1, nm1, 0), 0);
            assert_eq!(j_involution(k, nm1, nm1), nm1);
        }
    }

    #[test]
    fn unshuffle_gathers_residue_classes() {
        // After un-shuffle, positions that were ≡ l (mod k) form deck l.
        let k = 4usize;
        let n = 4 * 25;
        let orig: Vec<usize> = (0..n).collect();
        let mut v = orig.clone();
        unshuffle_mod(&mut v, k);
        let m = n / k;
        for l in 0..k {
            for j in 0..m {
                assert_eq!(v[l * m + j], j * k + l);
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        let mut v: Vec<u8> = vec![];
        shuffle_mod(&mut v, 3);
        let mut v = vec![42];
        shuffle_mod(&mut v, 1);
        assert_eq!(v, vec![42]);
        let mut v = vec![1, 2, 3];
        shuffle_mod(&mut v, 3); // k = n: identity
        assert_eq!(v, vec![1, 2, 3]);
    }
}
