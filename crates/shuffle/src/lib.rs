//! # ist-shuffle
//!
//! k-way perfect shuffles, un-shuffles, and circular shifts — the
//! permutation primitives composed by every layout construction algorithm.
//!
//! Two implementations of the k-way perfect shuffle are provided, following
//! Yang, Ellis, Mamakani and Ruskey ("In-place permuting and perfect
//! shuffling using involutions", IPL 2013), matching the two size regimes
//! the paper uses:
//!
//! * [`shuffle::shuffle_pow`] — `N = k^d`: the shuffle is the product of
//!   two **digit-reversal** involutions (`Ξ₁`),
//! * [`shuffle::shuffle_mod`] — any `N` divisible by `k`: the product of
//!   two **modular-inverse** involutions `J_1`, `J_k` (`Ξ₂`).
//!
//! Both run in place; each involution round is one pass of disjoint swaps,
//! parallelized with rayon. Circular shifts ([`rotate`]) are implemented by
//! the classical three-reversal identity, which the paper's I/O chapter
//! blocks into cache-line-sized groups.

pub mod rotate;
pub mod shuffle;

pub use rotate::{
    reverse, reverse_par, rotate_left, rotate_left_par, rotate_right, rotate_right_par,
};
pub use shuffle::{
    j_involution, shuffle_mod, shuffle_mod_par, shuffle_pow, shuffle_pow_par, unshuffle_mod,
    unshuffle_mod_par, unshuffle_pow, unshuffle_pow_par,
};
