//! In-place reversals and circular shifts (rotations).
//!
//! A circular shift of `n` elements is two rounds of reversals:
//! `rotate_left(A, c) = reverse(reverse(A[0..c]) ++ reverse(A[c..n]))`.
//! Each reversal is `⌊len/2⌋` independent swaps, so rotations inherit the
//! `O(1)`-depth / `O(N)`-work parallel structure of involutions. The
//! paper's I/O analysis (§4.2) notes that reversal swaps can be performed
//! on blocks of `B` contiguous elements, giving `O(N / (P·B))` I/Os; on a
//! real machine that blocking is what the hardware cache does for us when
//! we sweep the two halves linearly, which is exactly the access pattern
//! below.

use ist_perm::{apply_involution_par, SharedSlice};
use rayon::prelude::*;

/// Sub-ranges shorter than this are rotated sequentially even by the
/// `_par` entry points.
const PAR_CUTOFF: usize = 1 << 14;

/// Reverse `data` in place, sequentially.
///
/// # Examples
/// ```
/// use ist_shuffle::reverse;
/// let mut v = vec![1, 2, 3, 4, 5];
/// reverse(&mut v);
/// assert_eq!(v, vec![5, 4, 3, 2, 1]);
/// ```
#[inline]
pub fn reverse<T>(data: &mut [T]) {
    data.reverse();
}

/// Reverse `data` in place using parallel disjoint swaps.
///
/// # Examples
/// ```
/// use ist_shuffle::reverse_par;
/// let mut v: Vec<u32> = (0..100_000).collect();
/// reverse_par(&mut v);
/// assert!(v.windows(2).all(|w| w[0] > w[1]));
/// ```
pub fn reverse_par<T: Send>(data: &mut [T]) {
    let n = data.len();
    if n < PAR_CUTOFF {
        data.reverse();
        return;
    }
    // Reversal is the involution i -> n-1-i.
    apply_involution_par(data, move |i| n - 1 - i);
}

/// Circular shift left by `c` positions: element at index `i` moves to
/// index `(i + n − c) mod n`. Equivalently, the first `c` elements move to
/// the back.
///
/// # Examples
/// ```
/// use ist_shuffle::rotate_left;
/// let mut v = vec![1, 2, 3, 4, 5];
/// rotate_left(&mut v, 2);
/// assert_eq!(v, vec![3, 4, 5, 1, 2]);
/// ```
#[inline]
pub fn rotate_left<T>(data: &mut [T], c: usize) {
    let n = data.len();
    if n == 0 {
        return;
    }
    data.rotate_left(c % n);
}

/// Circular shift right by `c` positions: element at index `i` moves to
/// index `(i + c) mod n`.
///
/// # Examples
/// ```
/// use ist_shuffle::rotate_right;
/// let mut v = vec![1, 2, 3, 4, 5];
/// rotate_right(&mut v, 2);
/// assert_eq!(v, vec![4, 5, 1, 2, 3]);
/// ```
#[inline]
pub fn rotate_right<T>(data: &mut [T], c: usize) {
    let n = data.len();
    if n == 0 {
        return;
    }
    data.rotate_right(c % n);
}

/// Parallel circular shift left by `c`, via the three-reversal identity.
///
/// Matches [`rotate_left`] semantically; uses `O(1)` depth in the PRAM
/// abstraction (three rounds of disjoint swaps).
///
/// # Examples
/// ```
/// use ist_shuffle::{rotate_left, rotate_left_par};
/// let mut a: Vec<u32> = (0..50_000).collect();
/// let mut b = a.clone();
/// rotate_left(&mut a, 12345);
/// rotate_left_par(&mut b, 12345);
/// assert_eq!(a, b);
/// ```
pub fn rotate_left_par<T: Send>(data: &mut [T], c: usize) {
    let n = data.len();
    if n == 0 {
        return;
    }
    let c = c % n;
    if c == 0 {
        return;
    }
    if n < PAR_CUTOFF {
        data.rotate_left(c);
        return;
    }
    let (head, tail) = data.split_at_mut(c);
    rayon::join(|| reverse_par(head), || reverse_par(tail));
    reverse_par(data);
}

/// Parallel circular shift right by `c`. See [`rotate_left_par`].
///
/// # Examples
/// ```
/// use ist_shuffle::{rotate_right, rotate_right_par};
/// let mut a: Vec<u32> = (0..50_000).collect();
/// let mut b = a.clone();
/// rotate_right(&mut a, 777);
/// rotate_right_par(&mut b, 777);
/// assert_eq!(a, b);
/// ```
pub fn rotate_right_par<T: Send>(data: &mut [T], c: usize) {
    let n = data.len();
    if n == 0 {
        return;
    }
    let c = c % n;
    rotate_left_par(data, n - c);
}

/// Swap two equal-length disjoint regions `[a, a+len)` and `[b, b+len)` of
/// `data` in parallel. Used by the chunked gather (swapping `C`-element
/// chunks) and by Figure 6.4's "swap first half with second half" baseline.
///
/// # Panics
/// Panics if the regions overlap or are out of bounds.
///
/// # Examples
/// ```
/// use ist_shuffle::rotate::swap_regions_par;
/// let mut v = vec![1, 2, 3, 4, 5, 6];
/// swap_regions_par(&mut v, 0, 4, 2);
/// assert_eq!(v, vec![5, 6, 3, 4, 1, 2]);
/// ```
pub fn swap_regions_par<T: Send>(data: &mut [T], a: usize, b: usize, len: usize) {
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    assert!(a + len <= b, "regions overlap");
    assert!(b + len <= data.len(), "region out of bounds");
    if len < PAR_CUTOFF {
        for i in 0..len {
            data.swap(a + i, b + i);
        }
        return;
    }
    let shared = SharedSlice::new(data);
    (0..len)
        .into_par_iter()
        .with_min_len(1 << 12)
        .for_each(|i| {
            // SAFETY: indices a+i and b+i are in bounds (asserted above); the
            // regions are disjoint and each i is owned by one task, so no two
            // tasks touch the same element.
            unsafe { shared.swap(a + i, b + i) };
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_inverses() {
        for n in [1usize, 2, 5, 100, 1 << 15] {
            for c in [0usize, 1, n / 3, n - 1, n, n + 7] {
                let orig: Vec<usize> = (0..n).collect();
                let mut v = orig.clone();
                rotate_left(&mut v, c);
                rotate_right(&mut v, c);
                assert_eq!(v, orig, "n={n} c={c}");
            }
        }
    }

    #[test]
    fn rotate_semantics_index_map() {
        let n = 11usize;
        let mut v: Vec<usize> = (0..n).collect();
        rotate_left(&mut v, 4);
        for i in 0..n {
            // element originally at i now at (i + n - 4) % n
            assert_eq!(v[(i + n - 4) % n], i);
        }
        let mut w: Vec<usize> = (0..n).collect();
        rotate_right(&mut w, 4);
        for i in 0..n {
            assert_eq!(w[(i + 4) % n], i);
        }
    }

    #[test]
    fn par_matches_seq_large() {
        let n = (1 << 16) + 13;
        for c in [0usize, 1, 12345, n - 1] {
            let mut a: Vec<u64> = (0..n as u64).collect();
            let mut b = a.clone();
            rotate_left(&mut a, c);
            rotate_left_par(&mut b, c);
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    fn reverse_par_odd_even() {
        for n in [0usize, 1, 2, 3, (1 << 15) - 1, 1 << 15] {
            let mut a: Vec<u64> = (0..n as u64).collect();
            let mut b = a.clone();
            a.reverse();
            reverse_par(&mut b);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn swap_regions_basic() {
        let mut v: Vec<u32> = (0..10).collect();
        swap_regions_par(&mut v, 6, 0, 4); // order-insensitive
        assert_eq!(v, vec![6, 7, 8, 9, 4, 5, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn swap_regions_rejects_overlap() {
        let mut v = vec![0u8; 10];
        swap_regions_par(&mut v, 0, 3, 4);
    }
}
