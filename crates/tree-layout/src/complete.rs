//! Geometry of **complete** (non-perfect) trees and the "perfect prefix +
//! overflow leaves" layout format used by the Chapter-5 extensions.
//!
//! Sorted input of arbitrary size `N` always forms a *complete* tree: all
//! levels full except the last, which is filled left to right. Following
//! the paper, construction first separates the `L` elements of the non-full
//! last level (the **overflow leaves**) from the `I` elements of the full
//! levels, permutes the full part as a perfect tree, and stores the
//! overflow leaves — still sorted — in the array's suffix:
//!
//! ```text
//! [ perfect layout of the I full elements | L overflow leaves, sorted ]
//! ```
//!
//! Queries descend the perfect part and, on falling off at in-order gap
//! `g`, probe the overflow suffix (gap `g` hosts overflow content iff it is
//! among the leftmost gaps). This module provides the index maps for both
//! the binary case (BST / vEB) and the multiway case (B-tree).

use ist_bits::{ilog, ilog2_floor};

/// Split of a complete **binary** tree of `n` keys into full levels and
/// overflow leaves.
///
/// # Examples
/// ```
/// use ist_layout::CompleteShape;
/// let s = CompleteShape::new(10); // full tree 7, overflow 3
/// assert_eq!(s.full_count(), 7);
/// assert_eq!(s.overflow(), 3);
/// assert_eq!(s.full_levels(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteShape {
    n: usize,
    full_levels: u32,
}

impl CompleteShape {
    /// Shape for `n ≥ 1` keys.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        // Largest h with 2^h - 1 <= n; when n is perfect this yields
        // L = 0 because n + 1 = 2^h exactly.
        let h = ilog2_floor(n as u64 + 1);
        Self { n, full_levels: h }
    }

    /// Total number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff there are no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of levels in the full (perfect) part.
    #[inline]
    pub fn full_levels(&self) -> u32 {
        self.full_levels
    }

    /// Number of keys in the full part: `2^full_levels − 1`.
    #[inline]
    pub fn full_count(&self) -> usize {
        (1usize << self.full_levels) - 1
    }

    /// Number of overflow (non-full level) keys.
    #[inline]
    pub fn overflow(&self) -> usize {
        self.n - self.full_count()
    }

    /// `true` iff the tree is perfect (no overflow).
    #[inline]
    pub fn is_perfect(&self) -> bool {
        self.overflow() == 0
    }

    /// Is the key at this sorted position an overflow leaf?
    ///
    /// The `L` overflow leaves occupy the even sorted positions
    /// `0, 2, …, 2(L−1)` (the leftmost leaves visited first by the
    /// in-order traversal).
    #[inline]
    pub fn is_overflow(&self, sorted: usize) -> bool {
        sorted < 2 * self.overflow() && sorted.is_multiple_of(2)
    }

    /// Rank of a *full* element within the full tree's sorted order.
    ///
    /// # Panics
    /// Debug-asserts the position is not an overflow leaf.
    #[inline]
    pub fn full_rank(&self, sorted: usize) -> usize {
        debug_assert!(!self.is_overflow(sorted));
        let l = self.overflow();
        if sorted < 2 * l {
            (sorted - 1) / 2
        } else {
            sorted - l
        }
    }

    /// Rank of an overflow leaf among the overflow leaves.
    #[inline]
    pub fn overflow_rank(&self, sorted: usize) -> usize {
        debug_assert!(self.is_overflow(sorted));
        sorted / 2
    }

    /// Sorted position of the full element with full-tree rank `f`.
    #[inline]
    pub fn sorted_of_full(&self, f: usize) -> usize {
        let l = self.overflow();
        if f < l {
            2 * f + 1
        } else {
            f + l
        }
    }

    /// Sorted position of the overflow leaf with overflow rank `j`.
    #[inline]
    pub fn sorted_of_overflow(&self, j: usize) -> usize {
        debug_assert!(j < self.overflow());
        2 * j
    }

    /// Full layout map for the complete tree, parameterized by the perfect
    /// map used for the full part (BST or vEB): sorted → layout position.
    ///
    /// # Examples
    /// ```
    /// use ist_layout::{bst_pos, CompleteShape};
    /// let s = CompleteShape::new(10);
    /// // Overflow leaf at sorted 0 goes to layout 7 + 0.
    /// assert_eq!(s.pos(0, bst_pos), 7);
    /// // Full element at sorted 1 has full rank 0.
    /// assert_eq!(s.pos(1, bst_pos), bst_pos(3, 0));
    /// ```
    pub fn pos(&self, sorted: usize, perfect: impl Fn(u32, usize) -> usize) -> usize {
        if self.is_overflow(sorted) {
            self.full_count() + self.overflow_rank(sorted)
        } else {
            perfect(self.full_levels, self.full_rank(sorted))
        }
    }

    /// Inverse of [`CompleteShape::pos`].
    pub fn pos_inv(&self, layout: usize, perfect_inv: impl Fn(u32, usize) -> usize) -> usize {
        let i = self.full_count();
        if layout >= i {
            self.sorted_of_overflow(layout - i)
        } else {
            self.sorted_of_full(perfect_inv(self.full_levels, layout))
        }
    }
}

/// Split of a complete **B-tree** of `n` keys into the perfect part and
/// overflow leaves.
///
/// Overflow structure: `L = q·B + s` overflow keys form `q` full overflow
/// leaf nodes plus one partial node of `s` keys; overflow node `j` hangs
/// in in-order gap `j` of the full tree.
///
/// # Examples
/// ```
/// use ist_layout::complete::BtreeCompleteShape;
/// let s = BtreeCompleteShape::new(30, 2); // full 3-ary tree of 26 + 4 overflow
/// assert_eq!(s.full_count(), 26);
/// assert_eq!(s.overflow(), 4);
/// assert_eq!(s.full_overflow_nodes(), 2);
/// assert_eq!(s.partial_node_len(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtreeCompleteShape {
    n: usize,
    b: usize,
    full_node_levels: u32,
}

impl BtreeCompleteShape {
    /// Shape for `n ≥ 1` keys, `b ≥ 1` keys per node.
    pub fn new(n: usize, b: usize) -> Self {
        assert!(n >= 1 && b >= 1);
        let k = (b + 1) as u64;
        let m = ilog(k, n as u64 + 1);
        Self {
            n,
            b,
            full_node_levels: m,
        }
    }

    /// Total number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff there are no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Keys per node.
    #[inline]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Node levels of the full (perfect) part.
    #[inline]
    pub fn full_node_levels(&self) -> u32 {
        self.full_node_levels
    }

    /// Keys in the full part: `(B+1)^m − 1`.
    #[inline]
    pub fn full_count(&self) -> usize {
        (self.b + 1).pow(self.full_node_levels) - 1
    }

    /// Number of overflow keys `L`.
    #[inline]
    pub fn overflow(&self) -> usize {
        self.n - self.full_count()
    }

    /// `true` iff the tree is perfect.
    #[inline]
    pub fn is_perfect(&self) -> bool {
        self.overflow() == 0
    }

    /// Number of *full* overflow leaf nodes `q = ⌊L/B⌋`.
    #[inline]
    pub fn full_overflow_nodes(&self) -> usize {
        self.overflow() / self.b
    }

    /// Keys in the final partial overflow node `s = L mod B`.
    #[inline]
    pub fn partial_node_len(&self) -> usize {
        self.overflow() % self.b
    }

    /// Is the key at this sorted position an overflow key?
    ///
    /// Overflow keys occupy sorted positions `j(B+1)+c` for `j < q`,
    /// `c < B`, plus `q(B+1)..q(B+1)+s`.
    #[inline]
    pub fn is_overflow(&self, sorted: usize) -> bool {
        let k = self.b + 1;
        let q = self.full_overflow_nodes();
        if sorted < q * k {
            sorted % k != self.b
        } else {
            sorted < q * k + self.partial_node_len()
        }
    }

    /// Rank of a full element within the full tree's sorted order.
    #[inline]
    pub fn full_rank(&self, sorted: usize) -> usize {
        debug_assert!(!self.is_overflow(sorted));
        let k = self.b + 1;
        let q = self.full_overflow_nodes();
        if sorted < q * k {
            sorted / k
        } else {
            sorted - self.overflow()
        }
    }

    /// Rank of an overflow key among the overflow keys (its offset in the
    /// layout's overflow suffix).
    #[inline]
    pub fn overflow_rank(&self, sorted: usize) -> usize {
        debug_assert!(self.is_overflow(sorted));
        let k = self.b + 1;
        let q = self.full_overflow_nodes();
        if sorted < q * k {
            sorted - sorted / k
        } else {
            sorted - q
        }
    }

    /// Sorted position of the full element with full rank `f`.
    #[inline]
    pub fn sorted_of_full(&self, f: usize) -> usize {
        let k = self.b + 1;
        let q = self.full_overflow_nodes();
        if f < q {
            f * k + self.b
        } else {
            f + self.overflow()
        }
    }

    /// Sorted position of the overflow key with overflow rank `j`.
    #[inline]
    pub fn sorted_of_overflow(&self, j: usize) -> usize {
        debug_assert!(j < self.overflow());
        let k = self.b + 1;
        let q = self.full_overflow_nodes();
        let node = j / self.b;
        if node < q {
            node * k + j % self.b
        } else {
            q * k + (j - q * self.b)
        }
    }

    /// Full layout map: sorted → layout position
    /// (`[perfect B-tree layout | overflow keys]`).
    pub fn pos(&self, sorted: usize) -> usize {
        if self.is_overflow(sorted) {
            self.full_count() + self.overflow_rank(sorted)
        } else {
            crate::btree::btree_pos(self.b, self.full_node_levels, self.full_rank(sorted))
        }
    }

    /// Inverse of [`BtreeCompleteShape::pos`].
    pub fn pos_inv(&self, layout: usize) -> usize {
        let i = self.full_count();
        if layout >= i {
            self.sorted_of_overflow(layout - i)
        } else {
            self.sorted_of_full(crate::btree::btree_pos_inv(
                self.b,
                self.full_node_levels,
                layout,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bst::{bst_pos, bst_pos_inv};
    use crate::veb::{veb_pos, veb_pos_inv};

    #[test]
    fn binary_partition_is_consistent() {
        for n in 1..600usize {
            let s = CompleteShape::new(n);
            assert!(s.full_count() <= n);
            assert!(s.overflow() <= s.full_count() + 1);
            let mut full = 0;
            let mut over = 0;
            for i in 0..n {
                if s.is_overflow(i) {
                    assert_eq!(s.sorted_of_overflow(s.overflow_rank(i)), i);
                    over += 1;
                } else {
                    assert_eq!(s.sorted_of_full(s.full_rank(i)), i);
                    full += 1;
                }
            }
            assert_eq!(full, s.full_count(), "n={n}");
            assert_eq!(over, s.overflow(), "n={n}");
        }
    }

    #[test]
    fn binary_full_ranks_are_order_preserving() {
        let s = CompleteShape::new(100);
        let fulls: Vec<usize> = (0..100).filter(|&i| !s.is_overflow(i)).collect();
        for (f, &i) in fulls.iter().enumerate() {
            assert_eq!(s.full_rank(i), f);
        }
    }

    #[test]
    fn binary_pos_is_permutation() {
        for n in [1usize, 2, 3, 7, 8, 20, 63, 64, 100, 255, 300] {
            let s = CompleteShape::new(n);
            let mut seen = vec![false; n];
            for i in 0..n {
                let p = s.pos(i, bst_pos);
                assert!(!seen[p], "n={n} collision at {p}");
                seen[p] = true;
                assert_eq!(s.pos_inv(p, bst_pos_inv), i);
            }
            // Also exercises the vEB variant.
            let mut seen = vec![false; n];
            for i in 0..n {
                let p = s.pos(i, veb_pos);
                assert!(!seen[p]);
                seen[p] = true;
                assert_eq!(s.pos_inv(p, veb_pos_inv), i);
            }
        }
    }

    #[test]
    fn btree_partition_is_consistent() {
        for b in [1usize, 2, 3, 8] {
            for n in 1..400usize {
                let s = BtreeCompleteShape::new(n, b);
                let mut over = 0;
                for i in 0..n {
                    if s.is_overflow(i) {
                        assert_eq!(s.sorted_of_overflow(s.overflow_rank(i)), i, "n={n} b={b}");
                        over += 1;
                    } else {
                        assert_eq!(s.sorted_of_full(s.full_rank(i)), i, "n={n} b={b}");
                    }
                }
                assert_eq!(over, s.overflow(), "n={n} b={b}");
            }
        }
    }

    #[test]
    fn btree_pos_is_permutation() {
        for b in [1usize, 2, 4] {
            for n in [1usize, 5, 26, 27, 30, 79, 80, 81, 200] {
                let s = BtreeCompleteShape::new(n, b);
                let mut seen = vec![false; n];
                for i in 0..n {
                    let p = s.pos(i);
                    assert!(!seen[p], "n={n} b={b} collision at {p}");
                    seen[p] = true;
                    assert_eq!(s.pos_inv(p), i, "n={n} b={b}");
                }
            }
        }
    }

    #[test]
    fn perfect_sizes_have_no_overflow() {
        assert!(CompleteShape::new(127).is_perfect());
        assert!(!CompleteShape::new(128).is_perfect());
        assert!(BtreeCompleteShape::new(26, 2).is_perfect());
        assert!(!BtreeCompleteShape::new(25, 2).is_perfect());
    }

    #[test]
    fn overflow_keys_sorted_in_suffix() {
        // Overflow ranks must be increasing in sorted order so the suffix
        // stays sorted (queries binary-probe it by gap index).
        let s = BtreeCompleteShape::new(100, 3);
        let mut last = None;
        for i in 0..100 {
            if s.is_overflow(i) {
                let r = s.overflow_rank(i);
                if let Some(prev) = last {
                    assert_eq!(r, prev + 1);
                }
                last = Some(r);
            }
        }
    }
}
