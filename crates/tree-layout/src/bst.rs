//! BST (level-order / breadth-first) layout position maps.
//!
//! A perfect BST on `N = 2^d − 1` keys stores the root at layout index 0
//! and the children of layout index `v` at `2v + 1` and `2v + 2`.
//!
//! The map from sorted order is the classical observation of Fich, Munro
//! and Poblete: writing a 1-indexed in-order position as `i = (x 1 0^j)₂`
//! (so `j = trailing_zeros(i)` is the node's height above the leaves and
//! `x` its rank within its level), the 1-indexed level-order position is
//! `π(i) = (0^j 1 x)₂ = 2^{d−1−j} + x`. Equivalently
//! `π(i) = rev₂(d − (j+1), rev₂(d, i))` — the two-involution form the
//! in-place algorithm applies.

use ist_bits::{ilog2_floor, is_perfect_bst_size};

/// Shape of a perfect BST: `N = 2^levels − 1` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BstShape {
    levels: u32,
}

impl BstShape {
    /// Shape for an array of length `n`; `n` must be `2^d − 1`.
    ///
    /// # Examples
    /// ```
    /// use ist_layout::BstShape;
    /// let s = BstShape::new(15);
    /// assert_eq!(s.levels(), 4);
    /// assert_eq!(s.len(), 15);
    /// assert!(BstShape::try_new(16).is_none());
    /// ```
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("BST layout requires n = 2^d - 1")
    }

    /// Fallible [`BstShape::new`].
    pub fn try_new(n: usize) -> Option<Self> {
        if is_perfect_bst_size(n as u64) {
            Some(Self {
                levels: ilog2_floor(n as u64 + 1),
            })
        } else {
            None
        }
    }

    /// Number of levels `d`.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of keys `2^d − 1`.
    #[inline]
    pub fn len(&self) -> usize {
        (1usize << self.levels) - 1
    }

    /// `true` iff the tree is empty (it never is; kept for API symmetry).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Map a sorted position (0-indexed) to its layout position.
    #[inline]
    pub fn pos(&self, sorted: usize) -> usize {
        bst_pos(self.levels, sorted)
    }

    /// Map a layout position back to the sorted position.
    #[inline]
    pub fn pos_inv(&self, layout: usize) -> usize {
        bst_pos_inv(self.levels, layout)
    }
}

/// Sorted position (0-indexed) → level-order layout position (0-indexed)
/// for a perfect BST with `d` levels.
///
/// # Examples
/// ```
/// use ist_layout::bst_pos;
/// // N = 7, sorted [1..7]: layout is [4, 2, 6, 1, 3, 5, 7] (values), i.e.
/// // sorted index 3 (the median) is the root at layout index 0.
/// assert_eq!(bst_pos(3, 3), 0);
/// assert_eq!(bst_pos(3, 1), 1);
/// assert_eq!(bst_pos(3, 5), 2);
/// assert_eq!(bst_pos(3, 0), 3);
/// ```
#[inline]
pub fn bst_pos(d: u32, sorted: usize) -> usize {
    let i = (sorted + 1) as u64; // 1-indexed in-order position
    debug_assert!(i < (1u64 << d), "index out of tree");
    let j = i.trailing_zeros(); // height above leaf level
    let x = i >> (j + 1); // rank within level
    ((1u64 << (d - 1 - j)) + x - 1) as usize
}

/// Level-order layout position (0-indexed) → sorted position (0-indexed)
/// for a perfect BST with `d` levels. Inverse of [`bst_pos`].
///
/// # Examples
/// ```
/// use ist_layout::{bst_pos, bst_pos_inv};
/// for i in 0..15 {
///     assert_eq!(bst_pos_inv(4, bst_pos(4, i)), i);
/// }
/// ```
#[inline]
pub fn bst_pos_inv(d: u32, layout: usize) -> usize {
    let p = (layout + 1) as u64; // 1-indexed heap position
    debug_assert!(p < (1u64 << d), "index out of tree");
    let level = ilog2_floor(p); // depth of the node (root = 0)
    let x = p - (1u64 << level); // rank within level
    let j = (d - 1 - level) as u64; // height above leaf level
    ((x << (j + 1)) + (1u64 << j) - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ist_bits::{rev2, rev_k};

    /// In-order traversal reference: build the layout by recursion.
    fn reference_layout(d: u32) -> Vec<usize> {
        let n = (1usize << d) - 1;
        let mut layout = vec![usize::MAX; n];
        // Assign sorted ranks by in-order traversal of the implicit heap.
        fn go(v: usize, n: usize, next: &mut usize, layout: &mut [usize]) {
            if v >= n {
                return;
            }
            go(2 * v + 1, n, next, layout);
            layout[v] = *next; // node v holds sorted rank *next
            *next += 1;
            go(2 * v + 2, n, next, layout);
        }
        let mut next = 0;
        go(0, n, &mut next, &mut layout);
        layout
    }

    #[test]
    fn matches_inorder_reference() {
        for d in 1..=12u32 {
            let layout = reference_layout(d);
            let n = layout.len();
            for (v, &in_order) in layout.iter().enumerate().take(n) {
                assert_eq!(bst_pos(d, in_order), v, "d={d} node={v}");
                assert_eq!(bst_pos_inv(d, v), in_order, "d={d} node={v}");
            }
        }
    }

    #[test]
    fn roundtrips() {
        for d in 1..=16u32 {
            let n = (1usize << d) - 1;
            for i in (0..n).step_by(1.max(n / 511)) {
                assert_eq!(bst_pos_inv(d, bst_pos(d, i)), i);
                assert_eq!(bst_pos(d, bst_pos_inv(d, i)), i);
            }
        }
    }

    #[test]
    fn equals_two_involution_form() {
        // π(i) (1-indexed) = rev₂(d−(j+1), rev₂(d, i)) per Fich et al.
        for d in 1..=12u32 {
            let n = (1u64 << d) - 1;
            for i in 1..=n {
                let j = i.trailing_zeros();
                let once = rev2(d, i);
                let twice = rev_k(2, d - (j + 1), once);
                assert_eq!(
                    bst_pos(d, (i - 1) as usize),
                    (twice - 1) as usize,
                    "d={d} i={i}"
                );
            }
        }
    }

    #[test]
    fn children_are_adjacent_ranges() {
        // Left child keys all smaller, right child keys all larger.
        let d = 10u32;
        let n = (1usize << d) - 1;
        for v in 0..(n - 1) / 2 {
            let me = bst_pos_inv(d, v);
            let lc = bst_pos_inv(d, 2 * v + 1);
            let rc = bst_pos_inv(d, 2 * v + 2);
            assert!(lc < me && me < rc, "v={v}");
        }
    }

    #[test]
    fn shape_api() {
        let s = BstShape::new(31);
        for i in 0..31 {
            assert_eq!(s.pos_inv(s.pos(i)), i);
        }
        assert_eq!(s.levels(), 5);
    }
}
