//! # ist-layout
//!
//! Index arithmetic for the three implicit search tree layouts studied in
//! the paper: **BST** (level order of a complete binary search tree),
//! **B-tree** (level order of a complete `(B+1)`-ary search tree), and
//! **van Emde Boas** (recursive cache-oblivious order).
//!
//! For each layout this crate provides the *position map*
//! `sorted index → layout index` and its inverse, for perfect trees. These
//! maps define the permutations that the construction algorithms in
//! `ist-core` realize in place; here they double as the **test oracle**
//! (apply the map out of place and compare) and as the navigation
//! arithmetic used by `ist-query` during searches.
//!
//! All maps use 0-indexed array positions externally; the classical
//! 1-indexed formulations (heap arithmetic, in-order trailing-zero tricks)
//! are internal.

#![forbid(unsafe_code)]

pub mod bst;
pub mod btree;
pub mod complete;
pub mod veb;

pub use bst::{bst_pos, bst_pos_inv, BstShape};
pub use btree::{btree_pos, btree_pos_inv, BtreeShape};
pub use complete::CompleteShape;
pub use veb::{veb_pos, veb_pos_inv, veb_split, VebShape};

/// The three implicit layouts, as a runtime tag used across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// Level-order complete binary search tree.
    Bst,
    /// Level-order complete (B+1)-ary search tree; the `B` parameter lives
    /// alongside wherever this tag is used.
    Btree,
    /// Recursive van Emde Boas order.
    Veb,
}

impl LayoutKind {
    /// All layout kinds, for exhaustive sweeps in tests and benches.
    pub const ALL: [LayoutKind; 3] = [LayoutKind::Bst, LayoutKind::Btree, LayoutKind::Veb];

    /// Human-readable lowercase name (stable; used in CSV output).
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::Bst => "bst",
            LayoutKind::Btree => "btree",
            LayoutKind::Veb => "veb",
        }
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
