//! van Emde Boas (vEB) layout position maps.
//!
//! The vEB layout of a perfect tree with `d` levels splits it into a *top*
//! subtree `T₀` on the upper `t = ⌈d/2⌉` levels (holding `r = 2^t − 1`
//! keys) and `r + 1` *bottom* subtrees `T₁..T_{r+1}` on the lower
//! `b = ⌊d/2⌋` levels (`l = 2^b − 1` keys each), laid out as
//! `vEB(T₀), vEB(T₁), …, vEB(T_{r+1})`, recursively.
//!
//! This split convention matches the paper: for `N = 2^{2x} − 1` (even
//! `d`) `r = l = 2^x − 1`; for `N = 2^{2x−1} − 1` (odd `d`) `r = 2^x − 1`
//! and `l = 2^{x−1} − 1`, i.e. `r = 2l + 1`.
//!
//! In sorted (in-order, 1-indexed) position `p`, the key belongs to `T₀`
//! iff `p ≡ 0 (mod 2^b)`; otherwise it belongs to bottom tree
//! `⌊p / 2^b⌋ + 1` at in-order offset `p mod 2^b`. The maps below iterate
//! this decomposition, costing `O(log d) = O(log log N)` per index — the
//! `τ_π` the paper cites for the vEB layout.

use ist_bits::{ilog2_floor, is_perfect_bst_size};

/// The vEB split of `d` levels: `(t, b) = (⌈d/2⌉, ⌊d/2⌋)`.
///
/// # Examples
/// ```
/// use ist_layout::veb_split;
/// assert_eq!(veb_split(4), (2, 2));
/// assert_eq!(veb_split(5), (3, 2));
/// assert_eq!(veb_split(1), (1, 0));
/// ```
#[inline]
pub fn veb_split(d: u32) -> (u32, u32) {
    (d.div_ceil(2), d / 2)
}

/// Shape of a perfect tree in vEB order: `N = 2^levels − 1` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VebShape {
    levels: u32,
}

impl VebShape {
    /// Shape for an array of length `n`; `n` must be `2^d − 1`.
    ///
    /// # Examples
    /// ```
    /// use ist_layout::VebShape;
    /// let s = VebShape::new(15);
    /// assert_eq!(s.levels(), 4);
    /// assert!(VebShape::try_new(14).is_none());
    /// ```
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("vEB layout requires n = 2^d - 1")
    }

    /// Fallible [`VebShape::new`].
    pub fn try_new(n: usize) -> Option<Self> {
        if is_perfect_bst_size(n as u64) {
            Some(Self {
                levels: ilog2_floor(n as u64 + 1),
            })
        } else {
            None
        }
    }

    /// Number of levels `d`.
    #[inline]
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Number of keys `2^d − 1`.
    #[inline]
    pub fn len(&self) -> usize {
        (1usize << self.levels) - 1
    }

    /// `true` iff the tree is empty (never, for a valid shape).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Map a sorted position (0-indexed) to its vEB layout position.
    #[inline]
    pub fn pos(&self, sorted: usize) -> usize {
        veb_pos(self.levels, sorted)
    }

    /// Map a vEB layout position back to the sorted position.
    #[inline]
    pub fn pos_inv(&self, layout: usize) -> usize {
        veb_pos_inv(self.levels, layout)
    }
}

/// Sorted position (0-indexed) → vEB layout position (0-indexed) for a
/// perfect tree with `d` levels. Iterative, `O(log d)` time, no
/// allocation.
///
/// # Examples
/// ```
/// use ist_layout::veb_pos;
/// // Figure 1.3 of the paper: N = 15, layout (values 1..15) is
/// // [8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15].
/// let layout_of = |value: usize| veb_pos(4, value - 1);
/// assert_eq!(layout_of(8), 0);
/// assert_eq!(layout_of(4), 1);
/// assert_eq!(layout_of(12), 2);
/// assert_eq!(layout_of(2), 3);
/// assert_eq!(layout_of(1), 4);
/// assert_eq!(layout_of(15), 14);
/// ```
pub fn veb_pos(d: u32, sorted: usize) -> usize {
    debug_assert!(d >= 1 && (sorted as u64) < (1u64 << d) - 1);
    let mut p = (sorted + 1) as u64; // 1-indexed in-order within subtree
    let mut d = d;
    let mut base = 0usize; // layout offset of the current subtree
    loop {
        if d == 1 {
            debug_assert_eq!(p, 1);
            return base;
        }
        let (t, b) = veb_split(d);
        let low = p & ((1u64 << b) - 1);
        if low == 0 {
            // Key lies in the top subtree.
            p >>= b;
            d = t;
        } else {
            // Key lies in bottom subtree q (0-indexed among bottoms).
            let q = p >> b;
            let r = (1usize << t) - 1;
            let l = (1usize << b) - 1;
            base += r + (q as usize) * l;
            p = low;
            d = b;
        }
    }
}

/// vEB layout position (0-indexed) → sorted position (0-indexed). Inverse
/// of [`veb_pos`].
///
/// # Examples
/// ```
/// use ist_layout::{veb_pos, veb_pos_inv};
/// for d in 1..=10 {
///     let n = (1usize << d) - 1;
///     for i in 0..n {
///         assert_eq!(veb_pos_inv(d, veb_pos(d, i)), i);
///     }
/// }
/// ```
pub fn veb_pos_inv(d: u32, layout: usize) -> usize {
    (inv_rec(d, layout) - 1) as usize
}

/// Returns the 1-indexed in-order position within a `d`-level subtree.
fn inv_rec(d: u32, layout: usize) -> u64 {
    debug_assert!(d >= 1 && (layout as u64) < (1u64 << d) - 1);
    if d == 1 {
        debug_assert_eq!(layout, 0);
        return 1;
    }
    let (t, b) = veb_split(d);
    let r = (1usize << t) - 1;
    let l = (1usize << b) - 1;
    if layout < r {
        inv_rec(t, layout) << b
    } else {
        let off = layout - r;
        let q = (off / l) as u64;
        (q << b) + inv_rec(b, off % l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vEB layout built by explicit recursion on index vectors.
    /// Returns `layout[v] = sorted rank at layout slot v`.
    fn reference_layout(d: u32) -> Vec<usize> {
        fn build(d: u32, inorder: Vec<usize>) -> Vec<usize> {
            let n = inorder.len();
            assert_eq!(n, (1usize << d) - 1);
            if d == 1 {
                return inorder;
            }
            let (t, b) = veb_split(d);
            let bb = 1usize << b;
            // Top tree: every bb-th element (1-indexed multiples of 2^b).
            let top: Vec<usize> = (1..=n)
                .filter(|p| p % bb == 0)
                .map(|p| inorder[p - 1])
                .collect();
            let mut out = build(t, top);
            // Bottom trees: consecutive runs between top elements.
            let r = (1usize << t) - 1;
            for q in 0..=r {
                let bottom: Vec<usize> =
                    (q * bb + 1..(q + 1) * bb).map(|p| inorder[p - 1]).collect();
                out.extend(build(b, bottom));
            }
            out
        }
        build(d, (0..(1usize << d) - 1).collect())
    }

    #[test]
    fn matches_recursive_reference() {
        for d in 1..=14u32 {
            let layout = reference_layout(d);
            for (v, &rank) in layout.iter().enumerate() {
                assert_eq!(veb_pos(d, rank), v, "d={d} v={v}");
                assert_eq!(veb_pos_inv(d, v), rank, "d={d} v={v}");
            }
        }
    }

    #[test]
    fn figure_1_3_full() {
        let expect: Vec<usize> = vec![8, 4, 12, 2, 1, 3, 6, 5, 7, 10, 9, 11, 14, 13, 15];
        for (v, &val) in expect.iter().enumerate() {
            assert_eq!(veb_pos(4, val - 1), v);
            assert_eq!(veb_pos_inv(4, v) + 1, val);
        }
    }

    #[test]
    fn small_trees_match_bst() {
        // For d <= 2 the vEB and BFS layouts coincide.
        use crate::bst::bst_pos;
        for d in 1..=2u32 {
            let n = (1usize << d) - 1;
            for i in 0..n {
                assert_eq!(veb_pos(d, i), bst_pos(d, i));
            }
        }
    }

    #[test]
    fn root_is_median() {
        for d in 1..=20u32 {
            let n = (1u64 << d) - 1;
            let median = (n / 2) as usize; // 0-indexed in-order root
            assert_eq!(veb_pos(d, median), 0, "d={d}");
        }
    }

    #[test]
    fn split_sizes() {
        // r = 2l + 1 for odd d; r = l for even d (paper's two cases).
        for d in 2..=30u32 {
            let (t, b) = veb_split(d);
            assert_eq!(t + b, d);
            let r = (1u64 << t) - 1;
            let l = (1u64 << b) - 1;
            if d % 2 == 0 {
                assert_eq!(r, l);
            } else {
                assert_eq!(r, 2 * l + 1);
            }
        }
    }

    #[test]
    fn large_roundtrip_sampled() {
        let d = 26u32;
        let n = (1usize << d) - 1;
        for i in (0..n).step_by(104_729) {
            assert_eq!(veb_pos_inv(d, veb_pos(d, i)), i);
        }
    }
}
