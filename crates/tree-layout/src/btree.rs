//! B-tree (level-order multiway) layout position maps.
//!
//! A perfect B-tree with branching `k = B + 1` and `m` node levels holds
//! `N = k^m − 1` keys in `(k^m − 1)/B` nodes of `B` keys each, stored in
//! breadth-first node order: node `v` (0-indexed) occupies layout slots
//! `[vB, vB + B)`, and its children are nodes `vk + 1 + c` for
//! `c ∈ [0, k]`... more precisely child `c` of node `v` is node
//! `v·k + c + 1` — the standard (B+1)-ary heap rule.
//!
//! The sorted → layout map follows the paper's recursive structure: in
//! sorted order every `k`-th element (1-indexed positions divisible by
//! `k`) is *internal*; the rest form runs of `B` consecutive keys, one run
//! per leaf node. Internal elements form a perfect B-tree one level
//! shorter, laid out in the prefix; leaf nodes follow, left to right.

use ist_bits::{is_perfect_btree_size, perfect_btree_height};

/// Shape of a perfect B-tree: branching `k = B + 1`, `m` node levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtreeShape {
    /// Keys per node.
    b: usize,
    /// Node levels.
    m: u32,
}

impl BtreeShape {
    /// Shape for an array of length `n` with `b` keys per node; `n` must
    /// equal `(b+1)^m − 1`.
    ///
    /// # Examples
    /// ```
    /// use ist_layout::BtreeShape;
    /// let s = BtreeShape::new(26, 2); // Figure 1.2 of the paper
    /// assert_eq!(s.node_levels(), 3);
    /// assert_eq!(s.num_nodes(), 13);
    /// assert!(BtreeShape::try_new(27, 2).is_none());
    /// ```
    pub fn new(n: usize, b: usize) -> Self {
        Self::try_new(n, b).expect("B-tree layout requires n = (B+1)^m - 1")
    }

    /// Fallible [`BtreeShape::new`].
    pub fn try_new(n: usize, b: usize) -> Option<Self> {
        if b == 0 || n == 0 {
            return None;
        }
        let k = (b + 1) as u64;
        if !is_perfect_btree_size(k, n as u64) {
            return None;
        }
        Some(Self {
            b,
            m: perfect_btree_height(k, n as u64),
        })
    }

    /// Keys per node (`B`).
    #[inline]
    pub fn b(&self) -> usize {
        self.b
    }

    /// Branching factor (`B + 1`).
    #[inline]
    pub fn k(&self) -> usize {
        self.b + 1
    }

    /// Node levels (`m`).
    #[inline]
    pub fn node_levels(&self) -> u32 {
        self.m
    }

    /// Total number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.k().pow(self.m) - 1
    }

    /// `true` iff there are no keys (never, for a valid shape).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.len() / self.b
    }

    /// Map a sorted position (0-indexed) to its layout position.
    #[inline]
    pub fn pos(&self, sorted: usize) -> usize {
        btree_pos(self.b, self.m, sorted)
    }

    /// Map a layout position back to the sorted position.
    #[inline]
    pub fn pos_inv(&self, layout: usize) -> usize {
        btree_pos_inv(self.b, self.m, layout)
    }
}

/// Sorted position (0-indexed) → level-order B-tree layout position
/// (0-indexed), for a perfect B-tree with `B = b` keys per node and `m`
/// node levels (`N = (b+1)^m − 1`). Costs `O(m)`.
///
/// # Examples
/// ```
/// use ist_layout::btree_pos;
/// // B = 2, m = 2: N = 8, sorted [1..8]. Root node holds {3, 6}; leaves
/// // {1,2}, {4,5}, {7,8}. Layout: [3,6, 1,2, 4,5, 7,8].
/// assert_eq!(btree_pos(2, 2, 2), 0); // value 3
/// assert_eq!(btree_pos(2, 2, 5), 1); // value 6
/// assert_eq!(btree_pos(2, 2, 0), 2); // value 1
/// assert_eq!(btree_pos(2, 2, 3), 4); // value 4
/// ```
pub fn btree_pos(b: usize, m: u32, sorted: usize) -> usize {
    let k = b + 1;
    debug_assert!(sorted < k.pow(m) - 1);
    let mut i = sorted;
    let mut m = m;
    loop {
        debug_assert!(m >= 1);
        if !(i + 1).is_multiple_of(k) {
            // Leaf element of the current (sub)tree: internal prefix has
            // k^{m-1} - 1 slots, then leaf node j = i / k, slot i % k.
            let internal = k.pow(m - 1) - 1;
            return internal + (i / k) * b + i % k;
        }
        // Internal: recurse on the tree formed by every k-th element.
        i = (i + 1) / k - 1;
        m -= 1;
    }
}

/// Level-order B-tree layout position (0-indexed) → sorted position
/// (0-indexed). Inverse of [`btree_pos`].
///
/// # Examples
/// ```
/// use ist_layout::{btree_pos, btree_pos_inv};
/// for i in 0..26 {
///     assert_eq!(btree_pos_inv(2, 3, btree_pos(2, 3, i)), i);
/// }
/// ```
pub fn btree_pos_inv(b: usize, m: u32, layout: usize) -> usize {
    let k = b + 1;
    debug_assert!(layout < k.pow(m) - 1);
    // Descend the recursion: find which level's leaf region `layout`
    // falls in, then replay the internal-index transformation forwards.
    let mut levels_up = 0u32; // how many times we entered the internal tree
    let q = layout;
    let mut mm = m;
    loop {
        debug_assert!(mm >= 1);
        let internal = k.pow(mm - 1) - 1;
        if q >= internal {
            // Leaf region of this subtree.
            let off = q - internal;
            let mut i = (off / b) * k + off % b;
            // Undo the internal-element compressions.
            for _ in 0..levels_up {
                i = (i + 1) * k - 1;
            }
            return i;
        }
        levels_up += 1;
        mm -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference layout by explicit multiway in-order traversal.
    /// Returns `layout[v] = sorted rank stored at layout slot v`.
    fn reference_layout(b: usize, m: u32) -> Vec<usize> {
        let k = b + 1;
        let n = k.pow(m) - 1;
        let num_nodes = n / b;
        let mut layout = vec![usize::MAX; n];
        let mut next = 0usize;
        // In-order traversal of the node heap: children of node v are
        // v*k + c + 1 for c in 0..k.
        fn go(
            v: usize,
            num_nodes: usize,
            k: usize,
            b: usize,
            next: &mut usize,
            layout: &mut [usize],
        ) {
            if v >= num_nodes {
                return;
            }
            for c in 0..k {
                go(v * k + c + 1, num_nodes, k, b, next, layout);
                if c < b {
                    layout[v * b + c] = *next;
                    *next += 1;
                }
            }
        }
        go(0, num_nodes, k, b, &mut next, &mut layout);
        assert_eq!(next, n);
        layout
    }

    #[test]
    fn matches_inorder_reference() {
        for b in [1usize, 2, 3, 4, 7] {
            for m in 1..=4u32 {
                if (b + 1).pow(m) > 1 << 14 {
                    continue;
                }
                let layout = reference_layout(b, m);
                for (v, &rank) in layout.iter().enumerate() {
                    assert_eq!(btree_pos(b, m, rank), v, "b={b} m={m} v={v}");
                    assert_eq!(btree_pos_inv(b, m, v), rank, "b={b} m={m} v={v}");
                }
            }
        }
    }

    #[test]
    fn figure_1_2_of_paper() {
        // N = 26, B = 2 (Figure 1.2): root holds values {9, 18}; second
        // level nodes {3,6}, {12,15}, {21,24}; leaves the rest.
        // Values are 1-indexed sorted ranks.
        let b = 2;
        let m = 3;
        let val = |layout: usize| btree_pos_inv(b, m, layout) + 1;
        assert_eq!(val(0), 9);
        assert_eq!(val(1), 18);
        assert_eq!(val(2), 3);
        assert_eq!(val(3), 6);
        assert_eq!(val(4), 12);
        assert_eq!(val(5), 15);
        assert_eq!(val(6), 21);
        assert_eq!(val(7), 24);
        // First leaf node: {1, 2}
        assert_eq!(val(8), 1);
        assert_eq!(val(9), 2);
        // Last leaf node: {25, 26}
        assert_eq!(val(24), 25);
        assert_eq!(val(25), 26);
    }

    #[test]
    fn b_equals_1_matches_bst() {
        use crate::bst::bst_pos;
        for d in 1..=10u32 {
            let n = (1usize << d) - 1;
            for i in 0..n {
                assert_eq!(btree_pos(1, d, i), bst_pos(d, i), "d={d} i={i}");
            }
        }
    }

    #[test]
    fn node_key_order_and_child_ranges() {
        // Keys within a node are increasing; child c's keys lie strictly
        // between the node's keys c-1 and c.
        let b = 3usize;
        let m = 3u32;
        let k = b + 1;
        let n = k.pow(m) - 1;
        let num_nodes = n / b;
        let internal_nodes = (k.pow(m - 1) - 1) / b;
        for v in 0..internal_nodes {
            for c in 0..=b {
                let child = v * k + c + 1;
                assert!(child < num_nodes);
                let lo = if c == 0 {
                    0
                } else {
                    btree_pos_inv(b, m, v * b + c - 1) + 1
                };
                let hi = if c == b {
                    n
                } else {
                    btree_pos_inv(b, m, v * b + c)
                };
                for s in 0..b {
                    let key = btree_pos_inv(b, m, child * b + s);
                    assert!(key >= lo && key < hi, "v={v} c={c} s={s}");
                }
            }
        }
    }

    #[test]
    fn shape_api() {
        let s = BtreeShape::new(80, 2); // 3^4 - 1
        assert_eq!(s.node_levels(), 4);
        assert_eq!(s.num_nodes(), 40);
        for i in (0..80).step_by(7) {
            assert_eq!(s.pos_inv(s.pos(i)), i);
        }
    }
}
