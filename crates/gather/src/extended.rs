//! The **extended equidistant gather** (`r > l`), §3.2 of the paper.
//!
//! For the B-tree pattern — every `(B+1)`-th element is *internal*, i.e.
//! the array of `N = (B+1)^m − 1` elements looks like
//!
//! ```text
//! [ leaf run (B) | internal | leaf run (B) | internal | … | leaf run (B) ]
//! ```
//!
//! — there are `r = ⌊N/(B+1)⌋` internal elements but blocks of only
//! `l = B` leaves, so the basic gather (which needs `r ≤ l`) does not
//! apply. The extended gather recurses: split the array into `B + 1`
//! partitions, gather each partition's internal elements to its front
//! recursively, then run one **chunked** gather (`r = l = B`, chunk
//! `C = (B+1)^{m−2}`) that hoists all internal elements to the global
//! front. Work `O(N log_{B+1} N)`, depth `O(log_{B+1} N)` (Props 9–10).
//!
//! Postcondition: the internal elements appear at the front **in sorted
//! order**, followed by the leaf elements in their original order — i.e.
//! the output equals a stable partition of the input by
//! `position mod (B+1) == B`.

use crate::chunked::{equidistant_gather_chunks, equidistant_gather_chunks_par};
use crate::equidistant_gather;
use ist_bits::ilog;

/// Below this size the parallel driver falls back to sequential recursion.
const SEQ_CUTOFF: usize = 1 << 13;

/// Sequential extended equidistant gather for the B-tree pattern.
///
/// Requires `data.len() = (b+1)^m − 1` for some `m ≥ 1` and `b ≥ 1`.
///
/// # Examples
/// ```
/// use ist_gather::extended_equidistant_gather;
/// // b = 2, m = 2: N = 8, internal at positions 2 and 5 (0-indexed).
/// let mut v = vec![0, 1, 100, 2, 3, 101, 4, 5];
/// extended_equidistant_gather(&mut v, 2);
/// assert_eq!(v, vec![100, 101, 0, 1, 2, 3, 4, 5]);
/// ```
pub fn extended_equidistant_gather<T>(data: &mut [T], b: usize) {
    let m = check_shape(data.len(), b);
    gather_rec_seq(data, b, m);
}

/// Parallel extended equidistant gather: the `B + 1` partitions recurse
/// concurrently; the final hoist is a parallel chunked gather.
///
/// # Examples
/// ```
/// use ist_gather::{extended_equidistant_gather, extended_equidistant_gather_par};
/// let b = 3;
/// let n = 4usize.pow(7) - 1;
/// let mut a: Vec<u64> = (0..n as u64).collect();
/// let mut p = a.clone();
/// extended_equidistant_gather(&mut a, b);
/// extended_equidistant_gather_par(&mut p, b);
/// assert_eq!(a, p);
/// ```
pub fn extended_equidistant_gather_par<T: Send>(data: &mut [T], b: usize) {
    let m = check_shape(data.len(), b);
    gather_rec_par(data, b, m);
}

fn check_shape(n: usize, b: usize) -> u32 {
    assert!(b >= 1, "b must be positive");
    let k = (b + 1) as u64;
    let m = ilog(k, n as u64 + 1);
    assert_eq!(
        k.pow(m),
        n as u64 + 1,
        "extended gather requires len = (b+1)^m - 1 (len = {n}, b = {b})"
    );
    m
}

fn gather_rec_seq<T>(data: &mut [T], b: usize, m: u32) {
    let k = b + 1;
    match m {
        0 | 1 => (), // a single (leaf) node: no internal elements
        2 => equidistant_gather(data, b, b),
        _ => {
            // Chunk size C = (B+1)^{m-2}. Partition 0 has C·k − 1
            // elements (C−1 internal, standard pattern); partitions
            // 1..=b have C·k elements each and start with an internal
            // element followed by a standard pattern.
            let c = k.pow(m - 2);
            let part_len = c * k;
            gather_rec_seq(&mut data[..part_len - 1], b, m - 1);
            for p in 1..k {
                let start = part_len - 1 + (p - 1) * part_len;
                gather_rec_seq(&mut data[start + 1..start + part_len], b, m - 1);
            }
            // Hoist: from global offset C−1 the array reads, in chunk
            // units, [L₀ (b) | I₁ | L₁ (b) | … | I_b | L_b (b)] — the
            // exact gather pattern with r = l = b.
            equidistant_gather_chunks(&mut data[c - 1..], b, b, c);
        }
    }
}

fn gather_rec_par<T: Send>(data: &mut [T], b: usize, m: u32) {
    let k = b + 1;
    if data.len() < SEQ_CUTOFF {
        return gather_rec_seq(data, b, m);
    }
    match m {
        0 | 1 => (),
        2 => equidistant_gather(data, b, b),
        _ => {
            let c = k.pow(m - 2);
            let part_len = c * k;
            let (head, mut rest) = data.split_at_mut(part_len - 1);
            let mut parts: Vec<&mut [T]> = vec![head];
            for _ in 1..k {
                let (p, r) = rest.split_at_mut(part_len);
                parts.push(p);
                rest = r;
            }
            debug_assert!(rest.is_empty());
            rayon::scope(|s| {
                for (p, part) in parts.into_iter().enumerate() {
                    s.spawn(move |_| {
                        if p == 0 {
                            gather_rec_par(part, b, m - 1);
                        } else {
                            gather_rec_par(&mut part[1..], b, m - 1);
                        }
                    });
                }
            });
            equidistant_gather_chunks_par(&mut data[c - 1..], b, b, c);
        }
    }
}

/// Out-of-place reference: stable partition by `pos mod (b+1) == b`.
pub fn reference_extended<T: Clone>(data: &[T], b: usize) -> Vec<T> {
    let k = b + 1;
    let mut out: Vec<T> = data
        .iter()
        .enumerate()
        .filter(|(i, _)| i % k == b)
        .map(|(_, v)| v.clone())
        .collect();
    out.extend(
        data.iter()
            .enumerate()
            .filter(|(i, _)| i % k != b)
            .map(|(_, v)| v.clone()),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(b: usize, m: u32) {
        let n = (b + 1).pow(m) - 1;
        let orig: Vec<usize> = (0..n).collect();
        let expect = reference_extended(&orig, b);
        let mut a = orig.clone();
        extended_equidistant_gather(&mut a, b);
        assert_eq!(a, expect, "seq b={b} m={m}");
        let mut p = orig.clone();
        extended_equidistant_gather_par(&mut p, b);
        assert_eq!(p, expect, "par b={b} m={m}");
    }

    #[test]
    fn all_small_shapes() {
        for b in 1..=5usize {
            for m in 1..=5u32 {
                if (b + 1).pow(m) > 1 << 16 {
                    continue;
                }
                check(b, m);
            }
        }
    }

    #[test]
    fn bst_case_b1() {
        // b = 1 is the BST case: internal = odd positions.
        for m in 1..=12u32 {
            check(1, m);
        }
    }

    #[test]
    fn wide_nodes() {
        check(8, 3);
        check(15, 3);
        check(31, 2);
    }

    #[test]
    fn large_parallel() {
        let b = 3usize;
        let m = 9u32; // 4^9 - 1 = 262143
        let n = (b + 1).pow(m) - 1;
        let orig: Vec<u64> = (0..n as u64).collect();
        let expect = reference_extended(&orig, b);
        let mut got = orig;
        extended_equidistant_gather_par(&mut got, b);
        assert_eq!(got, expect);
    }

    #[test]
    fn internal_prefix_is_sorted_pattern() {
        // After the gather, the first (k^{m-1} - 1) elements must be the
        // original internal elements in order — which themselves form the
        // B-tree pattern one level up.
        let b = 2usize;
        let m = 4u32;
        let k = b + 1;
        let n = k.pow(m) - 1;
        let mut v: Vec<usize> = (0..n).collect();
        extended_equidistant_gather(&mut v, b);
        let internal = k.pow(m - 1) - 1;
        for (idx, &val) in v[..internal].iter().enumerate() {
            assert_eq!(val, (idx + 1) * k - 1);
        }
    }

    #[test]
    #[should_panic(expected = "requires len")]
    fn rejects_bad_length() {
        let mut v = vec![0u8; 10];
        extended_equidistant_gather(&mut v, 2);
    }
}
