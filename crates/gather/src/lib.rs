//! # ist-gather
//!
//! The **equidistant gather** family — the workhorse of the paper's
//! cycle-leader construction algorithms (Chapter 3).
//!
//! Given an array interleaving `r` "gather" elements among `r + 1` blocks
//! of `l` elements each,
//!
//! ```text
//! [ T₁ (l) | t₁ | T₂ (l) | t₂ | … | T_r (l) | t_r | T_{r+1} (l) ]
//! ```
//!
//! the equidistant gather permutes it to
//!
//! ```text
//! [ t₁ … t_r | T₁ (l) | T₂ (l) | … | T_{r+1} (l) ]
//! ```
//!
//! in place. In the vEB construction the `tᵢ` are the root subtree `T₀`'s
//! keys and the `Tⱼ` are bottom subtrees; in the B-tree construction the
//! `tᵢ` are internal keys and the `Tⱼ` leaf runs.
//!
//! Variants provided:
//!
//! * [`equidistant_gather`] / [`equidistant_gather_par`] — the two-stage
//!   cycle-leader algorithm (`r ≤ l`): `r` disjoint anti-diagonal cycles,
//!   then one circular shift per block (§3.1),
//! * [`chunked`] — the same operation on *chunks* of `C` elements treated
//!   as units (used at every level of the B-tree algorithm; I/O-efficient
//!   because every move is a `C`-element swap),
//! * [`extended`] — the **extended** equidistant gather (`r > l`) built by
//!   recursive partitioning (§3.2),
//! * [`transpose`] — the I/O-optimized variant that makes each cycle
//!   contiguous via row shifts + an in-place matrix transpose (§4.2).

pub mod chunked;
pub mod extended;
pub mod transpose;

pub use chunked::{equidistant_gather_chunks, equidistant_gather_chunks_par, swap_halves_par};
pub use extended::{extended_equidistant_gather, extended_equidistant_gather_par};
pub use transpose::equidistant_gather_transposed;

use ist_perm::SharedSlice;
use rayon::prelude::*;

/// Expected array length for gather parameters `r` (gather elements) and
/// `l` (block size): `r + (r + 1) · l`.
///
/// # Examples
/// ```
/// use ist_gather::gather_len;
/// assert_eq!(gather_len(3, 3), 15);
/// assert_eq!(gather_len(0, 5), 5);
/// ```
#[inline]
pub fn gather_len(r: usize, l: usize) -> usize {
    r + (r + 1) * l
}

/// Original slot of gather element `t_c` (`c` is 1-indexed).
///
/// # Examples
/// ```
/// use ist_gather::t0_slot;
/// assert_eq!(t0_slot(1, 3), 3); // first gather element follows T₁
/// assert_eq!(t0_slot(2, 3), 7);
/// ```
#[inline]
pub fn t0_slot(c: usize, l: usize) -> usize {
    (c - 1) * (l + 1) + l
}

/// Slot of position `m` on gather cycle `c` (1-indexed): `m = 0` is the
/// gather element `t_c`; `m ≥ 1` is `T_m[c−m+1]`. The cycle rotates the
/// value at position `m` to position `m + 1 (mod c+1)`.
///
/// Exposed so instrumented replays (the PEM simulator) can trace the
/// exact cycle structure the production gather executes.
///
/// # Examples
/// ```
/// use ist_gather::{cycle_slot, t0_slot};
/// assert_eq!(cycle_slot(0, 2, 3), t0_slot(2, 3));
/// assert_eq!(cycle_slot(1, 2, 3), 1); // T₁[2]
/// assert_eq!(cycle_slot(2, 2, 3), 4); // T₂[1]
/// ```
#[inline]
pub fn cycle_slot(m: usize, c: usize, l: usize) -> usize {
    if m == 0 {
        t0_slot(c, l)
    } else {
        (m - 1) * (l + 1) + (c - m)
    }
}

/// Stage 1 unit: cycle `c` (1-indexed) rotates the slots
/// `[t_c, T₁[c], T₂[c−1], …, T_c[1]]` forward by one, which moves `t_c` to
/// front slot `c − 1` and every touched `Tⱼ` element into `Tⱼ`'s
/// destination block (rotated; fixed by stage 2).
#[inline]
fn run_cycle<T>(data: &mut [T], c: usize, l: usize) {
    // Slot of cycle position m (0 = the gather element; m >= 1 = T_m[c-m+1]):
    //   m = 0: (c-1)(l+1) + l
    //   m >= 1: (m-1)(l+1) + (c-m)
    // "Rotate forward by one" moves the value at position m to position
    // m+1 (wrapping); a backward swap walk realizes it in c swaps.
    let slot = |m: usize| -> usize {
        if m == 0 {
            t0_slot(c, l)
        } else {
            (m - 1) * (l + 1) + (c - m)
        }
    };
    for m in (1..=c).rev() {
        data.swap(slot(m), slot(m - 1));
    }
}

/// Stage 2 unit: after stage 1, block `j` (1-indexed) holds `T_j` rotated
/// left by `r + 1 − j`; rotate it right by the same amount.
#[inline]
fn fix_block<T>(block: &mut [T], j: usize, r: usize, l: usize) {
    let amount = (r + 1 - j) % l;
    if amount != 0 {
        block.rotate_right(amount);
    }
}

/// Sequential equidistant gather (cycle-leader, two stages).
///
/// Requires `r ≤ l`, `l ≥ 1`, and `data.len() == gather_len(r, l)`.
///
/// # Examples
/// ```
/// use ist_gather::equidistant_gather;
/// // r = 2, l = 2: [T1a T1b t1 T2a T2b t2 T3a T3b]
/// let mut v = vec![10, 11, 0, 20, 21, 1, 30, 31];
/// equidistant_gather(&mut v, 2, 2);
/// assert_eq!(v, vec![0, 1, 10, 11, 20, 21, 30, 31]);
/// ```
pub fn equidistant_gather<T>(data: &mut [T], r: usize, l: usize) {
    check_params(data.len(), r, l);
    if r == 0 {
        return;
    }
    for c in 1..=r {
        run_cycle(data, c, l);
    }
    for (j0, block) in data[r..].chunks_exact_mut(l).enumerate() {
        fix_block(block, j0 + 1, r, l);
    }
}

/// Parallel equidistant gather: the `r` cycles run concurrently (they are
/// slot-disjoint), then the block fix-ups run concurrently.
///
/// Semantics identical to [`equidistant_gather`].
///
/// # Examples
/// ```
/// use ist_gather::{equidistant_gather, equidistant_gather_par, gather_len};
/// let n = gather_len(63, 63);
/// let mut a: Vec<u32> = (0..n as u32).collect();
/// let mut b = a.clone();
/// equidistant_gather(&mut a, 63, 63);
/// equidistant_gather_par(&mut b, 63, 63);
/// assert_eq!(a, b);
/// ```
pub fn equidistant_gather_par<T: Send>(data: &mut [T], r: usize, l: usize) {
    check_params(data.len(), r, l);
    if r == 0 {
        return;
    }
    if data.len() < (1 << 13) {
        return equidistant_gather(data, r, l);
    }
    let n = data.len();
    let shared = SharedSlice::new(data);
    (1..=r).into_par_iter().for_each(|c| {
        // SAFETY: cycle c touches gather slot t_c and the anti-diagonal
        // {row + col = c - 1} of the conceptual matrix; distinct cycles
        // touch disjoint slot sets, so concurrent tasks never alias.
        let whole = unsafe { shared.slice_mut(0, n) };
        run_cycle(whole, c, l);
    });
    data[r..]
        .par_chunks_exact_mut(l)
        .enumerate()
        .for_each(|(j0, block)| fix_block(block, j0 + 1, r, l));
}

pub(crate) fn check_params(n: usize, r: usize, l: usize) {
    assert!(l >= 1, "block size l must be positive");
    assert!(
        r <= l,
        "equidistant gather requires r <= l (got r={r}, l={l})"
    );
    assert_eq!(
        n,
        gather_len(r, l),
        "data length {n} != r + (r+1)l for r={r}, l={l}"
    );
}

/// Out-of-place reference implementation used by tests and oracles.
pub fn reference_gather<T: Clone>(data: &[T], r: usize, l: usize) -> Vec<T> {
    check_params(data.len(), r, l);
    let mut out = Vec::with_capacity(data.len());
    for c in 1..=r {
        out.push(data[t0_slot(c, l)].clone());
    }
    for j in 0..=r {
        let base = j * (l + 1);
        for i in 0..l {
            out.push(data[base + i].clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(r: usize, l: usize) {
        let n = gather_len(r, l);
        let orig: Vec<usize> = (0..n).collect();
        let expect = reference_gather(&orig, r, l);
        let mut a = orig.clone();
        equidistant_gather(&mut a, r, l);
        assert_eq!(a, expect, "seq r={r} l={l}");
        let mut b = orig.clone();
        equidistant_gather_par(&mut b, r, l);
        assert_eq!(b, expect, "par r={r} l={l}");
    }

    #[test]
    fn all_small_shapes() {
        for l in 1..=12usize {
            for r in 0..=l {
                check(r, l);
            }
        }
    }

    #[test]
    fn veb_shapes() {
        // Even-height trees: r = l = 2^x - 1.
        for x in 1..=6u32 {
            let rl = (1usize << x) - 1;
            check(rl, rl);
        }
    }

    #[test]
    fn rectangular_shapes() {
        check(1, 100);
        check(7, 19);
        check(63, 64);
    }

    #[test]
    fn large_parallel_matches_reference() {
        let r = 127usize;
        let l = 127usize;
        let n = gather_len(r, l);
        let orig: Vec<u64> = (0..n as u64).rev().collect();
        let expect = reference_gather(&orig, r, l);
        let mut got = orig.clone();
        equidistant_gather_par(&mut got, r, l);
        assert_eq!(got, expect);
    }

    #[test]
    fn gather_is_value_preserving() {
        let r = 10;
        let l = 15;
        let n = gather_len(r, l);
        let mut v: Vec<usize> = (0..n).map(|i| i * 7 % 23).collect();
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        equidistant_gather(&mut v, r, l);
        v.sort_unstable();
        assert_eq!(v, sorted_before);
    }

    #[test]
    #[should_panic(expected = "r <= l")]
    fn rejects_r_greater_than_l() {
        let mut v = vec![0u8; gather_len(3, 2)];
        equidistant_gather(&mut v, 3, 2);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn rejects_bad_length() {
        let mut v = vec![0u8; 10];
        equidistant_gather(&mut v, 2, 2);
    }
}
