//! Equidistant gather on **chunks**: each logical unit is a run of `C`
//! contiguous elements.
//!
//! The B-tree cycle-leader algorithm applies the gather at every recursion
//! level while "treating each chunk of C elements as a single unit"
//! (§3.2). Because chunks are contiguous, every move is a `C`-element
//! block swap — the access pattern that makes the algorithm I/O-efficient
//! for `C ≥ B` (§4.3). The same primitive underlies Figure 6.4, which
//! compares the throughput of one chunked gather against the simplest
//! possible big-block move, [`swap_halves_par`].

use crate::{check_params, t0_slot};
use ist_perm::SharedSlice;
use ist_shuffle::rotate::swap_regions_par;
use ist_shuffle::rotate_right_par;
use rayon::prelude::*;

/// Sequential equidistant gather treating each `chunk` consecutive
/// elements as one unit.
///
/// Requires `data.len() == gather_len(r, l) * chunk`, `r ≤ l`, `l ≥ 1`,
/// `chunk ≥ 1`. With `chunk = 1` this is exactly
/// [`crate::equidistant_gather`].
///
/// # Examples
/// ```
/// use ist_gather::equidistant_gather_chunks;
/// // r = 1, l = 1, chunk = 2: [T1 (2 elems) | t1 (2) | T2 (2)]
/// let mut v = vec![10, 11, 0, 1, 20, 21];
/// equidistant_gather_chunks(&mut v, 1, 1, 2);
/// assert_eq!(v, vec![0, 1, 10, 11, 20, 21]);
/// ```
pub fn equidistant_gather_chunks<T>(data: &mut [T], r: usize, l: usize, chunk: usize) {
    assert!(chunk >= 1);
    assert_eq!(data.len() % chunk, 0, "length must be a multiple of chunk");
    check_params(data.len() / chunk, r, l);
    if r == 0 {
        return;
    }
    // Stage 1: the r disjoint cycles, on chunk units.
    for c in 1..=r {
        run_cycle_chunks(data, c, l, chunk);
    }
    // Stage 2: fix each block's rotation (block = l chunks).
    for (j0, block) in data[r * chunk..].chunks_exact_mut(l * chunk).enumerate() {
        let amount = (r + 1 - (j0 + 1)) % l;
        if amount != 0 {
            block.rotate_right(amount * chunk);
        }
    }
}

/// Parallel chunked equidistant gather.
///
/// Cycles execute one after another but each constituent `C`-element swap
/// is internally parallel, and the stage-2 block rotations run
/// concurrently — mirroring the paper's observation that this stage is
/// bound by big-block swap throughput (Figure 6.4), not by cycle-level
/// parallelism.
///
/// # Examples
/// ```
/// use ist_gather::{equidistant_gather_chunks, equidistant_gather_chunks_par, gather_len};
/// let (r, l, c) = (3, 3, 1000);
/// let n = gather_len(r, l) * c;
/// let mut a: Vec<u64> = (0..n as u64).collect();
/// let mut b = a.clone();
/// equidistant_gather_chunks(&mut a, r, l, c);
/// equidistant_gather_chunks_par(&mut b, r, l, c);
/// assert_eq!(a, b);
/// ```
pub fn equidistant_gather_chunks_par<T: Send>(data: &mut [T], r: usize, l: usize, chunk: usize) {
    assert!(chunk >= 1);
    assert_eq!(data.len() % chunk, 0, "length must be a multiple of chunk");
    check_params(data.len() / chunk, r, l);
    if r == 0 {
        return;
    }
    if data.len() < (1 << 14) {
        return equidistant_gather_chunks(data, r, l, chunk);
    }
    if chunk >= (1 << 12) {
        // Few, large chunks (the top of the B-tree recursion): parallelize
        // inside each block move.
        for c in 1..=r {
            run_cycle_chunks_par(data, c, l, chunk);
        }
    } else {
        // Many small chunks: parallelize across the disjoint cycles.
        let n = data.len();
        let shared = SharedSlice::new(data);
        (1..=r).into_par_iter().for_each(|c| {
            // SAFETY: distinct cycles touch disjoint chunk sets (the
            // gather chunk t_c plus the anti-diagonal row+col = c-1), so
            // concurrent tasks never alias.
            let whole = unsafe { shared.slice_mut(0, n) };
            run_cycle_chunks(whole, c, l, chunk);
        });
    }
    data[r * chunk..]
        .par_chunks_exact_mut(l * chunk)
        .enumerate()
        .for_each(|(j0, block)| {
            let amount = (r + 1 - (j0 + 1)) % l;
            if amount != 0 {
                rotate_right_par(block, amount * chunk);
            }
        });
}

#[inline]
fn cycle_slot(m: usize, c: usize, l: usize) -> usize {
    if m == 0 {
        t0_slot(c, l)
    } else {
        (m - 1) * (l + 1) + (c - m)
    }
}

#[inline]
fn run_cycle_chunks<T>(data: &mut [T], c: usize, l: usize, chunk: usize) {
    for m in (1..=c).rev() {
        let a = cycle_slot(m, c, l) * chunk;
        let b = cycle_slot(m - 1, c, l) * chunk;
        // SAFETY: distinct chunk indices map to disjoint element ranges.
        unsafe {
            std::ptr::swap_nonoverlapping(
                data.as_mut_ptr().add(a),
                data.as_mut_ptr().add(b),
                chunk,
            );
        }
    }
}

#[inline]
fn run_cycle_chunks_par<T: Send>(data: &mut [T], c: usize, l: usize, chunk: usize) {
    for m in (1..=c).rev() {
        let a = cycle_slot(m, c, l) * chunk;
        let b = cycle_slot(m - 1, c, l) * chunk;
        swap_regions_par(data, a, b, chunk);
    }
}

/// Swap the first half of `data` with the second half, in parallel — the
/// throughput baseline of Figure 6.4. Requires even length.
///
/// # Examples
/// ```
/// use ist_gather::swap_halves_par;
/// let mut v = vec![1, 2, 3, 4];
/// swap_halves_par(&mut v);
/// assert_eq!(v, vec![3, 4, 1, 2]);
/// ```
pub fn swap_halves_par<T: Send>(data: &mut [T]) {
    let n = data.len();
    assert_eq!(n % 2, 0, "swap_halves requires even length");
    if n == 0 {
        return;
    }
    swap_regions_par(data, 0, n / 2, n / 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gather_len, reference_gather};

    /// Reference: gather on the chunk-index sequence, expanded back.
    fn reference_chunked<T: Clone>(data: &[T], r: usize, l: usize, chunk: usize) -> Vec<T> {
        let units = data.len() / chunk;
        let ids: Vec<usize> = (0..units).collect();
        let permuted = reference_gather(&ids, r, l);
        let mut out = Vec::with_capacity(data.len());
        for u in permuted {
            out.extend_from_slice(&data[u * chunk..(u + 1) * chunk]);
        }
        out
    }

    #[test]
    fn chunked_matches_reference() {
        for (r, l) in [(0usize, 1usize), (1, 1), (2, 2), (3, 5), (7, 7)] {
            for chunk in [1usize, 2, 3, 16] {
                let n = gather_len(r, l) * chunk;
                let orig: Vec<usize> = (0..n).collect();
                let expect = reference_chunked(&orig, r, l, chunk);
                let mut a = orig.clone();
                equidistant_gather_chunks(&mut a, r, l, chunk);
                assert_eq!(a, expect, "seq r={r} l={l} chunk={chunk}");
                let mut b = orig.clone();
                equidistant_gather_chunks_par(&mut b, r, l, chunk);
                assert_eq!(b, expect, "par r={r} l={l} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunk_one_matches_plain_gather() {
        let (r, l) = (5usize, 9usize);
        let n = gather_len(r, l);
        let mut a: Vec<usize> = (0..n).collect();
        let mut b = a.clone();
        crate::equidistant_gather(&mut a, r, l);
        equidistant_gather_chunks(&mut b, r, l, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn big_chunks_parallel_path() {
        let (r, l) = (3usize, 3usize);
        let chunk = 1 << 13; // triggers the large-chunk parallel path
        let n = gather_len(r, l) * chunk;
        let orig: Vec<u64> = (0..n as u64).collect();
        let expect = reference_chunked(&orig, r, l, chunk);
        let mut got = orig.clone();
        equidistant_gather_chunks_par(&mut got, r, l, chunk);
        assert_eq!(got, expect);
    }

    #[test]
    fn many_small_chunks_parallel_path() {
        let (r, l) = (63usize, 63usize);
        let chunk = 8;
        let n = gather_len(r, l) * chunk;
        let orig: Vec<u64> = (0..n as u64).collect();
        let expect = reference_chunked(&orig, r, l, chunk);
        let mut got = orig.clone();
        equidistant_gather_chunks_par(&mut got, r, l, chunk);
        assert_eq!(got, expect);
    }

    #[test]
    fn swap_halves_roundtrip() {
        let n = 1 << 15;
        let orig: Vec<u32> = (0..n).collect();
        let mut v = orig.clone();
        swap_halves_par(&mut v);
        assert_eq!(&v[..(n / 2) as usize], &orig[(n / 2) as usize..]);
        swap_halves_par(&mut v);
        assert_eq!(v, orig);
    }
}
