//! I/O-optimized equidistant gather via row shifts + matrix transpose
//! (§4.2, Figure 4.1).
//!
//! For the square case `r = l`, view the first `r(r+1)` elements as an
//! `r × (r+1)` row-major grid: row `j` holds `T_{j+1}`'s `r` elements
//! followed by the gather element `t_{j+1}`; the trailing `r` elements of
//! the array (row `r`, i.e. `T_{r+1}`) never move during stage 1. The
//! stage-1 cycles are the **anti-diagonals** of the leading `r × r`
//! submatrix (plus one gather element each). Rotating row `j` right by `j`
//! aligns each anti-diagonal into a column; transposing then makes every
//! cycle a contiguous row, so the cycle rotations become streaming
//! `memmove`s. Undoing the transform and fixing the block rotations
//! completes the gather.
//!
//! In the PEM model this brings stage 1 from `O(N/P)` to `O(N/(PB))` I/Os
//! (Proposition 15); on real hardware it trades strided traffic for two
//! extra sequential passes, which the ablation bench quantifies.

use crate::check_params;

/// Equidistant gather for the square case `r = l`, using the transpose
/// optimization. Produces exactly the same permutation as
/// [`crate::equidistant_gather`]`(data, r, r)`.
///
/// # Examples
/// ```
/// use ist_gather::{equidistant_gather, equidistant_gather_transposed, gather_len};
/// let r = 31;
/// let n = gather_len(r, r);
/// let mut a: Vec<u32> = (0..n as u32).collect();
/// let mut b = a.clone();
/// equidistant_gather(&mut a, r, r);
/// equidistant_gather_transposed(&mut b, r);
/// assert_eq!(a, b);
/// ```
pub fn equidistant_gather_transposed<T>(data: &mut [T], r: usize) {
    check_params(data.len(), r, r);
    if r <= 1 {
        // r = 0: nothing; r = 1: a single 2-cycle, do it directly.
        if r == 1 {
            crate::equidistant_gather(data, 1, 1);
        }
        return;
    }
    let stride = r + 1;

    // (1) Rotate row j right by j (within its first r columns).
    for j in 1..r {
        let base = j * stride;
        data[base..base + r].rotate_right(j % r);
    }

    // (2) Transpose the r×r submatrix (columns 0..r of rows 0..r).
    transpose_square(data, r, stride);

    // (3) Each cycle c is now: gather slot t_c followed by the contiguous
    // run row (c-1), columns 0..c. Rotate forward by one.
    for c in 1..=r {
        let t0 = (c - 1) * stride + r;
        let base = (c - 1) * stride;
        // Value at t0 -> base; base+m -> base+m+1; base+c-1 -> t0.
        for m in (1..c).rev() {
            data.swap(base + m, base + m - 1);
        }
        data.swap(base, t0);
        // After the walk: original t0 value sits at base, originals
        // shifted right by one, and the last run element went to t0.
    }

    // (4) Undo the transpose and (5) the row shifts.
    transpose_square(data, r, stride);
    for j in 1..r {
        let base = j * stride;
        data[base..base + r].rotate_left(j % r);
    }

    // (6) Stage 2: fix each block's rotation, exactly as the plain
    // gather does (block j rotated right by (r+1-j) mod r).
    for (j0, block) in data[r..].chunks_exact_mut(r).enumerate() {
        let amount = (r - j0) % r; // (r + 1 - (j0+1)) % l with l = r
        if amount != 0 {
            block.rotate_right(amount);
        }
    }
}

/// In-place transpose of the `r × r` submatrix embedded with row `stride`.
fn transpose_square<T>(data: &mut [T], r: usize, stride: usize) {
    for j in 0..r {
        for i in 0..j {
            data.swap(j * stride + i, i * stride + j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{equidistant_gather, gather_len, reference_gather};

    #[test]
    fn matches_plain_gather_all_small() {
        for r in 1..=20usize {
            let n = gather_len(r, r);
            let orig: Vec<usize> = (0..n).collect();
            let expect = reference_gather(&orig, r, r);
            let mut got = orig.clone();
            equidistant_gather_transposed(&mut got, r);
            assert_eq!(got, expect, "r={r}");
        }
    }

    #[test]
    fn veb_sizes() {
        for x in 1..=7u32 {
            let r = (1usize << x) - 1;
            let n = gather_len(r, r);
            let mut a: Vec<u64> = (0..n as u64).collect();
            let mut b = a.clone();
            equidistant_gather(&mut a, r, r);
            equidistant_gather_transposed(&mut b, r);
            assert_eq!(a, b, "x={x}");
        }
    }

    #[test]
    fn transpose_is_involution() {
        let r = 9usize;
        let stride = r + 1;
        let n = gather_len(r, r);
        let orig: Vec<usize> = (0..n).collect();
        let mut v = orig.clone();
        transpose_square(&mut v, r, stride);
        assert_ne!(v, orig);
        transpose_square(&mut v, r, stride);
        assert_eq!(v, orig);
    }
}
