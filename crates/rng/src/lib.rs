//! Offline `rand`-compatible shim.
//!
//! Mirrors the small part of the `rand` crate API this workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! integer ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! SplitMix64 — statistically solid for test-input generation and
//! deterministic per seed, but intentionally *not* the upstream `StdRng`
//! stream and not cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random generator constructors.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a [`Range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)` using `rng`.
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Object-safe core randomness source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform sampling below `bound` by rejection (avoids modulo bias).
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Zone rejection: accept only draws below the largest multiple of
    // `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

impl SampleUniform for u64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + uniform_below(rng, hi - lo)
    }
}

impl SampleUniform for usize {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + uniform_below(rng, (hi - lo) as u64) as usize
    }
}

impl SampleUniform for u32 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range requires a non-empty range");
        lo + uniform_below(rng, (hi - lo) as u64) as u32
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): one additive step plus two
            // xor-shift-multiply mixes.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(10..17usize);
            assert!((10..17).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert!(sorted.into_iter().eq(0..100));
        assert!(
            !v.windows(2).all(|w| w[0] < w[1]),
            "shuffle left input sorted"
        );
    }
}
