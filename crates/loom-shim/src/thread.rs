//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`. Inside a
//! model execution spawned closures run on real OS threads gated by
//! the scheduler token; outside one they are plain `std` threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Mutex as StdMutex};

use crate::model::{
    current_ctx, finish_thread, join_thread, register_thread, wait_first_turn, yield_point, Ctx,
};

type Slot<T> = StdArc<StdMutex<Option<std::thread::Result<T>>>>;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        slot: Slot<T>,
        os: std::thread::JoinHandle<()>,
    },
}

/// Join handle mirroring `std::thread::JoinHandle`: `join` returns
/// `Err(payload)` when the thread panicked, under the model as in
/// production.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Std(h) => h.join(),
            Inner::Model { tid, slot, os } => {
                let ctx =
                    current_ctx().expect("ist-loom: model JoinHandle joined outside its execution");
                join_thread(&ctx, tid);
                // The target stored its result before finishing; its OS
                // thread exits immediately after, so this real join is
                // only a momentary wait.
                let _ = os.join();
                let res = slot
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take();
                res.expect("ist-loom: finished thread left no result")
            }
        }
    }
}

/// Spawn a thread. Under the model the new thread becomes runnable
/// immediately (as with `std`) but only executes when scheduled.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(ctx) = current_ctx() else {
        return JoinHandle(Inner::Std(std::thread::spawn(f)));
    };
    // The spawn itself is a visible action: give the scheduler a
    // chance to interleave before the new thread exists.
    yield_point();
    let tid = register_thread(&ctx);
    let slot: Slot<T> = StdArc::new(StdMutex::new(None));
    let slot2 = StdArc::clone(&slot);
    let exec = StdArc::clone(&ctx.exec);
    let os = std::thread::Builder::new()
        .name(format!("ist-loom-{tid}"))
        .spawn(move || {
            crate::model::set_thread_ctx(Ctx {
                exec: StdArc::clone(&exec),
                tid,
            });
            let result = catch_unwind(AssertUnwindSafe(|| {
                wait_first_turn(&exec, tid);
                f()
            }));
            let aborted = result
                .as_ref()
                .err()
                .is_some_and(|p| p.is::<crate::model::Abort>());
            if !aborted {
                *slot2
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(result);
            }
            finish_thread(&exec, tid);
            crate::model::clear_thread_ctx();
        })
        .unwrap_or_else(|e| panic!("ist-loom: OS thread spawn failed: {e}"));
    JoinHandle(Inner::Model { tid, slot, os })
}

/// A bare scheduling point (maps to `std::thread::yield_now` outside
/// the model).
pub fn yield_now() {
    if current_ctx().is_some() {
        yield_point();
    } else {
        std::thread::yield_now();
    }
}
