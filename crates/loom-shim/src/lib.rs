//! # ist-loom — deterministic-interleaving model checker
//!
//! A loom-style checker rebuilt in-tree (offline, no registry), in the
//! same shim spirit as `ist-parallel`/`ist-rand`: [`sync`] and
//! [`thread`] provide drop-in stand-ins for the `std` primitives the
//! `DynamicMap` publication/compaction path uses, and [`Model`] runs a
//! closure under **every** thread interleaving (bounded-exhaustive DFS
//! over scheduling decisions, with a CHESS-style preemption bound).
//!
//! ## Quickstart
//!
//! ```
//! use ist_loom::{sync::{Arc, AtomicUsize, Ordering}, thread, Model};
//!
//! let stats = Model::new()
//!     .check(|| {
//!         let c = Arc::new(AtomicUsize::new(0));
//!         let c2 = Arc::clone(&c);
//!         let t = thread::spawn(move || {
//!             c2.fetch_add(1, Ordering::Relaxed);
//!         });
//!         c.fetch_add(1, Ordering::Relaxed);
//!         t.join().unwrap();
//!         assert_eq!(c.load(Ordering::Relaxed), 2);
//!     })
//!     .expect("no interleaving violates the invariant");
//! assert!(stats.complete);
//! ```
//!
//! A failing check returns a [`Failure`] carrying the exact
//! [`Failure::schedule`] (vector of scheduler choices); feed it to
//! [`Model::replay`] to reproduce that interleaving deterministically.
//! The same program and model always explore schedules in the same
//! order, so the *first* failure found is stable too.
//!
//! ## How production code opts in
//!
//! Code under test routes its primitives through a `sync` module that
//! resolves to `std` normally and to these shims under
//! `--cfg ist_loom` (see `ist_dynamic::sync`). The model-check test
//! suite is then compiled and run with
//! `RUSTFLAGS="--cfg ist_loom" cargo test -p ist-dynamic --test model_check`.
//!
//! ## Model semantics (deliberate simplifications)
//!
//! - One thread runs at a time; every shim op is a preemption point.
//! - Atomics execute sequentially consistent regardless of the
//!   ordering argument: invariants are checked against the strongest
//!   memory model. Relaxed-ordering *weakness* is out of scope; what
//!   is in scope is every interleaving of the operations themselves.
//! - Mutex poisoning is not modeled (`lock` never errors); panics in
//!   spawned threads still surface through `join`, and a panic in the
//!   root closure — or a deadlock — becomes a [`Failure`].
//! - `Arc`/`MutexGuard` drops are visible to other threads at the next
//!   preemption point rather than being preemption points themselves
//!   (drops must never block or panic during unwinding).

#![forbid(unsafe_code)]

pub mod model;
pub mod sync;
pub mod thread;

pub use model::{Failure, Model, Stats};

#[cfg(test)]
mod tests {
    use super::sync::{Arc, AtomicBool, AtomicUsize, Mutex, Ordering};
    use super::{thread, Model};

    /// The classic lost update: load + store is not atomic.
    fn racy_counter() {
        let c = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
    }

    #[test]
    fn finds_lost_update() {
        let failure = Model::new().check(racy_counter).unwrap_err();
        assert!(failure.message.contains("lost update"), "{failure}");
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn failing_schedule_is_deterministic_and_replayable() {
        let first = Model::new().check(racy_counter).unwrap_err();
        let second = Model::new().check(racy_counter).unwrap_err();
        assert_eq!(first, second, "exploration order must be stable");
        let replayed = Model::new()
            .replay(&first.schedule, racy_counter)
            .unwrap_err();
        assert_eq!(replayed.message, first.message);
    }

    #[test]
    fn mutex_protected_counter_is_exhaustively_clean() {
        let stats = Model::new()
            .check(|| {
                let c = Arc::new(Mutex::new(0u32));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let c = Arc::clone(&c);
                    handles.push(thread::spawn(move || {
                        let mut g = c.lock().unwrap();
                        *g += 1;
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(*c.lock().unwrap(), 2);
            })
            .expect("mutex makes the increment atomic");
        assert!(stats.complete, "small model must be fully explored");
        assert!(stats.executions > 1, "must explore more than one order");
    }

    #[test]
    fn detects_abba_deadlock() {
        // Unbounded: the deadlock needs a preemption between the two
        // acquisitions on each side.
        let model = Model {
            preemption_bound: None,
            max_executions: 50_000,
        };
        let failure = model
            .check(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                {
                    let _gb = b.lock().unwrap();
                    let _ga = a.lock().unwrap();
                }
                t.join().unwrap();
            })
            .unwrap_err();
        assert!(failure.message.contains("deadlock"), "{failure}");
    }

    #[test]
    fn spawned_panic_surfaces_through_join_in_every_interleaving() {
        let stats = Model::new()
            .check(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let f2 = Arc::clone(&flag);
                let t = thread::spawn(move || {
                    f2.store(true, Ordering::SeqCst);
                    panic!("worker blew up");
                });
                let res = t.join();
                assert!(res.is_err(), "panic must surface through join");
                assert!(flag.load(Ordering::SeqCst));
            })
            .expect("join always reports the panic");
        assert!(stats.complete);
    }

    #[test]
    fn mutex_message_passing_holds() {
        // Flag-then-read under SeqCst atomics: no interleaving may see
        // the flag set without the payload.
        let stats = Model::new()
            .check(|| {
                let data = Arc::new(AtomicUsize::new(0));
                let ready = Arc::new(AtomicBool::new(false));
                let (d2, r2) = (Arc::clone(&data), Arc::clone(&ready));
                let t = thread::spawn(move || {
                    d2.store(42, Ordering::SeqCst);
                    r2.store(true, Ordering::SeqCst);
                });
                if ready.load(Ordering::SeqCst) {
                    assert_eq!(data.load(Ordering::SeqCst), 42);
                }
                t.join().unwrap();
            })
            .expect("publication order is respected");
        assert!(stats.complete);
    }

    #[test]
    fn shims_fall_back_to_std_outside_the_model() {
        let c = Arc::new(AtomicUsize::new(0));
        let m = Arc::new(Mutex::new(7u32));
        let (c2, m2) = (Arc::clone(&c), Arc::clone(&m));
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
            *m2.lock().unwrap() += 1;
        });
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 1);
        assert_eq!(*m.lock().unwrap(), 8);
        assert_eq!(Arc::strong_count(&c), 1);
        thread::yield_now();
    }

    #[test]
    fn preemption_bound_zero_is_serial() {
        // With no preemptions allowed, each spawned thread runs to
        // completion once scheduled: exactly the schedules where the
        // racy counter happens to be correct... unless a blocking
        // switch exposes it. Bound 0 still finds nothing here.
        let model = Model {
            preemption_bound: Some(0),
            max_executions: 50_000,
        };
        let stats = model.check(racy_counter).expect("no preemption, no race");
        assert!(stats.complete);
    }
}
