//! Drop-in stand-ins for the `std::sync` types the publication path
//! uses. Under a [`crate::model::Model::check`] execution every
//! operation is a scheduling point; outside one they behave exactly
//! like `std` (so code built with `--cfg ist_loom` still works in
//! ordinary tests).
//!
//! All atomic operations are executed `SeqCst` under the model
//! regardless of the ordering requested — the checker verifies the
//! algorithm against the *strongest* memory model, while the ordering
//! arguments remain whatever the production build uses. Poisoning is
//! not modeled: `lock` never returns `Err` (production code here
//! ignores poisoning anyway via `unwrap_or_else(PoisonError::into_inner)`).

use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc as StdArc, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub use std::sync::atomic::Ordering;

use crate::model::{acquire_resource, current_ctx, release_resource, yield_point, Execution};

static NEXT_RESOURCE_ID: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

fn fresh_resource_id() -> usize {
    // Relaxed: the id is only used as a unique key, never for ordering.
    NEXT_RESOURCE_ID.fetch_add(1, StdOrdering::Relaxed)
}

/// Model-aware `AtomicBool`: every op is a preemption point, executed
/// `SeqCst` under the model.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    pub fn load(&self, _order: Ordering) -> bool {
        yield_point();
        self.inner.load(StdOrdering::SeqCst)
    }

    pub fn store(&self, v: bool, _order: Ordering) {
        yield_point();
        self.inner.store(v, StdOrdering::SeqCst);
    }

    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        yield_point();
        self.inner.swap(v, StdOrdering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        yield_point();
        self.inner
            .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
    }
}

/// Model-aware `AtomicUsize`: every op is a preemption point, executed
/// `SeqCst` under the model.
#[derive(Debug, Default)]
pub struct AtomicUsize {
    inner: std::sync::atomic::AtomicUsize,
}

impl AtomicUsize {
    pub fn new(v: usize) -> Self {
        AtomicUsize {
            inner: std::sync::atomic::AtomicUsize::new(v),
        }
    }

    pub fn load(&self, _order: Ordering) -> usize {
        yield_point();
        self.inner.load(StdOrdering::SeqCst)
    }

    pub fn store(&self, v: usize, _order: Ordering) {
        yield_point();
        self.inner.store(v, StdOrdering::SeqCst);
    }

    pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
        yield_point();
        self.inner.fetch_add(v, StdOrdering::SeqCst)
    }

    pub fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
        yield_point();
        self.inner.fetch_sub(v, StdOrdering::SeqCst)
    }

    pub fn swap(&self, v: usize, _order: Ordering) -> usize {
        yield_point();
        self.inner.swap(v, StdOrdering::SeqCst)
    }
}

/// Model-aware `Arc`: `clone` and `strong_count` are preemption
/// points. Dropping is deliberately *not* a scheduling point — drops
/// run during unwinding, where the scheduler must never panic or
/// block — but the refcount decrement itself is the real (atomic)
/// one, so counts observed by `strong_count` are always coherent.
pub struct Arc<T: ?Sized> {
    inner: StdArc<T>,
}

impl<T> Arc<T> {
    pub fn new(v: T) -> Self {
        Arc {
            inner: StdArc::new(v),
        }
    }
}

impl<T: ?Sized> Arc<T> {
    pub fn strong_count(this: &Self) -> usize {
        yield_point();
        StdArc::strong_count(&this.inner)
    }

    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        StdArc::ptr_eq(&a.inner, &b.inner)
    }

    pub fn get_mut(this: &mut Self) -> Option<&mut T> {
        StdArc::get_mut(&mut this.inner)
    }
}

impl<T: ?Sized> Clone for Arc<T> {
    fn clone(&self) -> Self {
        yield_point();
        Arc {
            inner: StdArc::clone(&self.inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for Arc<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> AsRef<T> for Arc<T> {
    fn as_ref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Arc<T> {
    fn default() -> Self {
        Arc::new(T::default())
    }
}

/// Model-aware `Mutex`. Under the model, contention is resolved by the
/// scheduler (the inner real mutex is then uncontended by
/// construction); outside the model it *is* a plain `std` mutex.
pub struct Mutex<T: ?Sized> {
    id: usize,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Self {
        Mutex {
            id: fresh_resource_id(),
            inner: StdMutex::new(v),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current_ctx() {
            Some(ctx) => {
                yield_point();
                acquire_resource(&ctx, self.id);
                let guard = match self.inner.try_lock() {
                    Ok(g) => g,
                    // A model thread panicked while holding the inner
                    // guard; the model already released ownership.
                    Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
                    Err(std::sync::TryLockError::WouldBlock) => {
                        unreachable!("model grants the lock exclusively")
                    }
                };
                Ok(MutexGuard {
                    inner: guard,
                    model: Some((ctx.exec, self.id)),
                })
            }
            None => {
                let guard = self
                    .inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                Ok(MutexGuard {
                    inner: guard,
                    model: None,
                })
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self
            .inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner()))
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]; releasing updates model ownership and wakes
/// waiters without itself being a scheduling point (drop-safe).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
    model: Option<(StdArc<Execution>, usize)>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, id)) = self.model.take() {
            release_resource(&exec, id);
        }
    }
}
