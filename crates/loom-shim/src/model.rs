//! The deterministic scheduler: one runnable thread at a time, a
//! scheduling decision at every shim yield point, DFS over decision
//! prefixes with a preemption bound.
//!
//! Threads are real OS threads coordinated by a token (`active`) under
//! one mutex+condvar, so product code runs unmodified; determinism
//! comes from the single-token discipline, not from fibers. A schedule
//! is the vector of choice indices taken at each decision point;
//! replaying the same vector replays the same execution bit for bit.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Private panic payload used to unwind model threads out of their
/// wait loops when an execution is aborted (deadlock or divergence).
pub(crate) struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for a model mutex (by resource id) to be released.
    BlockedOnMutex(usize),
    /// Waiting for another model thread (by tid) to finish.
    BlockedOnJoin(usize),
    Finished,
}

pub(crate) struct ExecState {
    status: Vec<Status>,
    active: usize,
    /// model mutex resource id -> owning tid
    owners: HashMap<usize, usize>,
    /// Choice indices to take verbatim before free exploration.
    replay: Vec<usize>,
    /// Choice indices actually taken this execution.
    choices: Vec<usize>,
    /// Size of the choice set at each decision point (for DFS backtrack).
    counts: Vec<usize>,
    preemptions: u32,
    preemption_bound: Option<u32>,
    failure: Option<String>,
    aborted: bool,
    complete: bool,
}

/// One execution's shared scheduler state; every model thread holds an
/// `Arc` to it via TLS.
pub(crate) struct Execution {
    pub(crate) state: StdMutex<ExecState>,
    pub(crate) cv: Condvar,
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: StdArc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

pub(crate) fn set_thread_ctx(ctx: Ctx) {
    set_ctx(Some(ctx));
}

pub(crate) fn clear_thread_ctx() {
    set_ctx(None);
}

/// Install (once, process-wide) a panic hook that swallows panics on
/// model threads: the model converts them to join results or
/// [`Failure`]s, so the default all-threads backtrace spew is noise.
/// Non-model panics are forwarded to the previously installed hook.
fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CTX.with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(false));
            if !in_model {
                prev(info);
            }
        }));
    });
}

fn lock_state(exec: &Execution) -> StdMutexGuard<'_, ExecState> {
    exec.state
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Block until the token points at `me`. Panics with [`Abort`] if the
/// execution is aborted while waiting. Never called from a `Drop`.
fn wait_for_turn<'a>(
    exec: &'a Execution,
    mut st: StdMutexGuard<'a, ExecState>,
    me: usize,
) -> StdMutexGuard<'a, ExecState> {
    loop {
        if st.aborted {
            drop(st);
            std::panic::panic_any(Abort);
        }
        if st.active == me && st.status[me] == Status::Runnable {
            return st;
        }
        st = exec
            .cv
            .wait(st)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

/// Record one scheduling decision and hand the token to the chosen
/// thread. `me_runnable` says whether the calling thread is itself a
/// candidate (false when it just blocked or finished).
fn schedule_next(exec: &Execution, st: &mut ExecState, me: usize, me_runnable: bool) {
    let enabled: Vec<usize> = (0..st.status.len())
        .filter(|&t| st.status[t] == Status::Runnable)
        .collect();
    if enabled.is_empty() {
        if st.status.iter().all(|&s| s == Status::Finished) {
            st.complete = true;
        } else {
            let stuck: Vec<String> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != Status::Finished)
                .map(|(t, s)| format!("thread {t} {s:?}"))
                .collect();
            st.failure = Some(format!("deadlock: {}", stuck.join(", ")));
            st.aborted = true;
        }
        exec.cv.notify_all();
        return;
    }
    // Preemption bound: once the budget is spent, a thread that could
    // keep running must keep running — only blocking yields a switch.
    let out_of_budget = st.preemption_bound.is_some_and(|b| st.preemptions >= b);
    let restricted: Vec<usize> = if me_runnable && out_of_budget {
        vec![me]
    } else {
        enabled
    };
    let pos = st.choices.len();
    let idx = if pos < st.replay.len() {
        let i = st.replay[pos];
        if i >= restricted.len() {
            st.failure = Some(format!(
                "schedule divergence at step {pos}: replay index {i} but only {} choice(s) — \
                 the program under test is not deterministic given the schedule",
                restricted.len()
            ));
            st.aborted = true;
            exec.cv.notify_all();
            return;
        }
        i
    } else {
        0
    };
    st.counts.push(restricted.len());
    st.choices.push(idx);
    let chosen = restricted[idx];
    if me_runnable && chosen != me {
        st.preemptions += 1;
    }
    st.active = chosen;
    exec.cv.notify_all();
}

/// The universal preemption point: every shim operation calls this
/// before acting. Outside a model execution it is a no-op.
pub(crate) fn yield_point() {
    let Some(ctx) = current_ctx() else { return };
    let mut st = lock_state(&ctx.exec);
    if st.aborted {
        drop(st);
        std::panic::panic_any(Abort);
    }
    schedule_next(&ctx.exec, &mut st, ctx.tid, true);
    let _st = wait_for_turn(&ctx.exec, st, ctx.tid);
}

/// Register a newly spawned model thread; returns its tid. Caller
/// (the spawning thread) holds the token, so this is atomic.
pub(crate) fn register_thread(ctx: &Ctx) -> usize {
    let mut st = lock_state(&ctx.exec);
    let tid = st.status.len();
    st.status.push(Status::Runnable);
    tid
}

/// First wait of a freshly spawned model thread, before running its
/// closure.
pub(crate) fn wait_first_turn(exec: &Execution, me: usize) {
    let st = lock_state(exec);
    let _st = wait_for_turn(exec, st, me);
}

/// Mark `me` finished, wake its joiners, and hand the token onward.
/// Safe to call after a caught panic (runs in normal context).
pub(crate) fn finish_thread(exec: &Execution, me: usize) {
    let mut st = lock_state(exec);
    st.status[me] = Status::Finished;
    for t in 0..st.status.len() {
        if st.status[t] == Status::BlockedOnJoin(me) {
            st.status[t] = Status::Runnable;
        }
    }
    if st.aborted {
        exec.cv.notify_all();
        return;
    }
    schedule_next(exec, &mut st, me, false);
}

/// Model-acquire a mutex resource for the calling thread, blocking (in
/// model time) while another thread owns it. Must be preceded by a
/// [`yield_point`].
pub(crate) fn acquire_resource(ctx: &Ctx, id: usize) {
    loop {
        let mut st = lock_state(&ctx.exec);
        if st.aborted {
            drop(st);
            std::panic::panic_any(Abort);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = st.owners.entry(id) {
            e.insert(ctx.tid);
            return;
        }
        st.status[ctx.tid] = Status::BlockedOnMutex(id);
        schedule_next(&ctx.exec, &mut st, ctx.tid, false);
        let _st = wait_for_turn(&ctx.exec, st, ctx.tid);
        // Woken: the lock was released; loop to race for it again.
    }
}

/// Model-release a mutex resource and wake its waiters. Called from
/// guard `Drop` — must never panic and never block, so it only
/// updates state (the next acquisition has its own yield point).
pub(crate) fn release_resource(exec: &Execution, id: usize) {
    let mut st = lock_state(exec);
    st.owners.remove(&id);
    for t in 0..st.status.len() {
        if st.status[t] == Status::BlockedOnMutex(id) {
            st.status[t] = Status::Runnable;
        }
    }
    // No notify: nothing can act on this until a scheduling point,
    // and the releasing thread still holds the token.
}

/// Model-join: block (in model time) until `target` finishes.
pub(crate) fn join_thread(ctx: &Ctx, target: usize) {
    yield_point();
    loop {
        let mut st = lock_state(&ctx.exec);
        if st.aborted {
            drop(st);
            std::panic::panic_any(Abort);
        }
        if st.status[target] == Status::Finished {
            return;
        }
        st.status[ctx.tid] = Status::BlockedOnJoin(target);
        schedule_next(&ctx.exec, &mut st, ctx.tid, false);
        let _st = wait_for_turn(&ctx.exec, st, ctx.tid);
    }
}

/// A failing interleaving: the exact schedule that produced it (pass
/// to [`Model::replay`] to reproduce deterministically) and the panic
/// or deadlock message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    pub schedule: Vec<usize>,
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule {:?}: {}", self.schedule, self.message)
    }
}

/// Exploration statistics for a passing [`Model::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Number of distinct interleavings executed.
    pub executions: usize,
    /// False when `max_executions` cut exploration short.
    pub complete: bool,
}

/// Bounded-exhaustive model: configure and [`check`](Model::check).
#[derive(Debug, Clone, Copy)]
pub struct Model {
    /// Max context switches away from a still-runnable thread per
    /// execution (CHESS-style). `None` = unbounded (full DFS).
    pub preemption_bound: Option<u32>,
    /// Hard cap on explored interleavings.
    pub max_executions: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model {
            preemption_bound: Some(2),
            max_executions: 50_000,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl Model {
    pub fn new() -> Self {
        Model::default()
    }

    /// Run `f` under every interleaving (up to the bounds), starting
    /// each execution fresh. Returns the first failing schedule, or
    /// exploration stats if every interleaving passes.
    ///
    /// `f` runs as model thread 0 on the calling thread; threads it
    /// creates through [`crate::thread::spawn`] and every
    /// [`crate::sync`] primitive op become scheduling points. Panics
    /// in `f` (assertion failures) and deadlocks become [`Failure`]s;
    /// panics in *spawned* threads surface through `join`, exactly as
    /// with `std`. Put assertions in `f`, after joins.
    pub fn check<F: Fn()>(&self, f: F) -> Result<Stats, Failure> {
        install_quiet_hook();
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            let (choices, counts, failure) = self.run_once(prefix.clone(), &f);
            if let Some(message) = failure {
                return Err(Failure {
                    schedule: choices,
                    message,
                });
            }
            // DFS backtrack: bump the last decision that still has an
            // unexplored sibling, drop everything after it.
            let mut i = choices.len();
            let next = loop {
                if i == 0 {
                    break None;
                }
                i -= 1;
                if choices[i] + 1 < counts[i] {
                    let mut p = choices[..i].to_vec();
                    p.push(choices[i] + 1);
                    break Some(p);
                }
            };
            match next {
                None => {
                    return Ok(Stats {
                        executions,
                        complete: true,
                    })
                }
                Some(p) if executions >= self.max_executions => {
                    let _ = p;
                    return Ok(Stats {
                        executions,
                        complete: false,
                    });
                }
                Some(p) => prefix = p,
            }
        }
    }

    /// Re-run `f` under one exact schedule (as reported in a
    /// [`Failure`]). Returns `Ok(())` if it passes this time, or the
    /// reproduced failure.
    pub fn replay<F: Fn()>(&self, schedule: &[usize], f: F) -> Result<(), Failure> {
        install_quiet_hook();
        let (choices, _counts, failure) = self.run_once(schedule.to_vec(), &f);
        match failure {
            Some(message) => Err(Failure {
                schedule: choices,
                message,
            }),
            None => Ok(()),
        }
    }

    fn run_once<F: Fn()>(
        &self,
        replay: Vec<usize>,
        f: &F,
    ) -> (Vec<usize>, Vec<usize>, Option<String>) {
        let exec = StdArc::new(Execution {
            state: StdMutex::new(ExecState {
                status: vec![Status::Runnable],
                active: 0,
                owners: HashMap::new(),
                replay,
                choices: Vec::new(),
                counts: Vec::new(),
                preemptions: 0,
                preemption_bound: self.preemption_bound,
                failure: None,
                aborted: false,
                complete: false,
            }),
            cv: Condvar::new(),
        });
        set_ctx(Some(Ctx {
            exec: exec.clone(),
            tid: 0,
        }));
        let root = catch_unwind(AssertUnwindSafe(f));
        match root {
            Ok(()) => {
                // Root done; let detached threads run to completion.
                finish_thread(&exec, 0);
                let mut st = lock_state(&exec);
                while !st.complete && !st.aborted {
                    st = exec
                        .cv
                        .wait(st)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
            Err(payload) => {
                let mut st = lock_state(&exec);
                if !payload.is::<Abort>() && st.failure.is_none() {
                    st.failure = Some(panic_message(payload.as_ref()));
                }
                st.aborted = true;
                exec.cv.notify_all();
            }
        }
        set_ctx(None);
        let st = lock_state(&exec);
        (st.choices.clone(), st.counts.clone(), st.failure.clone())
    }
}
