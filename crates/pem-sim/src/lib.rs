//! # ist-pem-sim
//!
//! A **Parallel External Memory (PEM)** cost simulator, used to validate
//! the I/O-complexity bounds of Table 1.1 empirically.
//!
//! The PEM model (Arge et al.): `P` processors, each with a private
//! internal memory of `M` words, share an external memory; data moves in
//! blocks of `B` words; the parallel I/O complexity `Q(N, P)` is the
//! maximum number of block transfers performed by any one processor.
//!
//! The paper *analyzes* its algorithms in this model; the authors'
//! machines obviously cannot report PEM I/Os, and neither can ours — so
//! this crate is the substrate substitution: a fully-associative LRU
//! cache per (virtual) processor behind a [`TrackedArray`] that
//! implements the `ist-machine` `Machine` trait. The kernels in
//! [`kernels`] drive the **same** generic construction algorithms as the
//! production path (`ist_core::algorithms`) on this backend — not a
//! hand-maintained replica — so the traces measure the real algorithms
//! by construction, and the permuted output is bit-identical.
//!
//! ```
//! use ist_pem_sim::{kernels, PemConfig, TrackedArray};
//!
//! let cfg = PemConfig { m: 256, b: 16, p: 1 };
//! let mut arr = TrackedArray::from_sorted((1 << 12) - 1, cfg); // perfect tree size
//! kernels::cycle_leader_veb(&mut arr);
//! let io_cl = arr.stats().max_per_proc();
//!
//! let mut arr = TrackedArray::from_sorted((1 << 12) - 1, cfg);
//! kernels::involution_veb(&mut arr);
//! let io_inv = arr.stats().max_per_proc();
//! // The cycle-leader algorithm is the I/O-efficient one (§4).
//! assert!(io_cl < io_inv);
//! ```

#![forbid(unsafe_code)]

pub mod kernels;
mod lru;
mod machine;

pub use lru::LruCache;

/// PEM machine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PemConfig {
    /// Internal memory per processor, in words.
    pub m: usize,
    /// Block (cache line) size, in words.
    pub b: usize,
    /// Number of processors.
    pub p: usize,
}

impl PemConfig {
    /// Blocks that fit in one processor's internal memory.
    pub fn blocks(&self) -> usize {
        assert!(self.b >= 1 && self.m >= self.b && self.p >= 1);
        self.m / self.b
    }
}

/// Per-processor I/O counters produced by a tracked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoStats {
    per_proc: Vec<u64>,
}

impl IoStats {
    /// Parallel I/O complexity `Q`: the maximum over processors.
    pub fn max_per_proc(&self) -> u64 {
        self.per_proc.iter().copied().max().unwrap_or(0)
    }

    /// Total block transfers across all processors.
    pub fn total(&self) -> u64 {
        self.per_proc.iter().sum()
    }

    /// Individual counters.
    pub fn per_proc(&self) -> &[u64] {
        &self.per_proc
    }
}

/// An array of `u64` keys whose accesses are routed through per-processor
/// LRU caches, counting block transfers.
///
/// Instrumented kernels switch the *active processor* with
/// [`TrackedArray::set_proc`] at work-partition boundaries; each access is
/// charged to the active processor's cache.
pub struct TrackedArray {
    data: Vec<u64>,
    caches: Vec<LruCache>,
    ios: Vec<u64>,
    cur: usize,
    b: usize,
    p: usize,
}

impl TrackedArray {
    /// A tracked array holding `0..n` (sorted keys).
    pub fn from_sorted(n: usize, cfg: PemConfig) -> Self {
        Self::new((0..n as u64).collect(), cfg)
    }

    /// Wrap explicit data.
    pub fn new(data: Vec<u64>, cfg: PemConfig) -> Self {
        let blocks = cfg.blocks();
        Self {
            data,
            caches: (0..cfg.p).map(|_| LruCache::new(blocks)).collect(),
            ios: vec![0; cfg.p],
            cur: 0,
            b: cfg.b,
            p: cfg.p,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of virtual processors.
    pub fn procs(&self) -> usize {
        self.p
    }

    /// Switch the active processor (no cost; models the static work
    /// partition of the PRAM/PEM algorithms).
    #[inline]
    pub fn set_proc(&mut self, p: usize) {
        debug_assert!(p < self.p);
        self.cur = p;
    }

    #[inline]
    fn touch(&mut self, index: usize) {
        let block = index / self.b;
        if !self.caches[self.cur].access(block) {
            self.ios[self.cur] += 1;
        }
    }

    /// Read element `i` (charging its block).
    #[inline]
    pub fn read(&mut self, i: usize) -> u64 {
        self.touch(i);
        self.data[i]
    }

    /// Write element `i` (charging its block).
    #[inline]
    pub fn write(&mut self, i: usize, v: u64) {
        self.touch(i);
        self.data[i] = v;
    }

    /// Swap elements `i` and `j` (charging both blocks).
    #[inline]
    pub fn swap(&mut self, i: usize, j: usize) {
        self.touch(i);
        self.touch(j);
        self.data.swap(i, j);
    }

    /// Swap the disjoint ranges `[i, i+len)` and `[j, j+len)` with
    /// streaming accesses.
    pub fn swap_range(&mut self, i: usize, j: usize, len: usize) {
        for off in 0..len {
            self.swap(i + off, j + off);
        }
    }

    /// Rotate `[lo, hi)` right by `amount` via the three-reversal
    /// identity (the blocked, I/O-friendly rotation of §4.2).
    pub fn rotate_right(&mut self, lo: usize, hi: usize, amount: usize) {
        let len = hi - lo;
        if len == 0 {
            return;
        }
        let amount = amount % len;
        if amount == 0 {
            return;
        }
        self.reverse(lo, hi);
        self.reverse(lo, lo + amount);
        self.reverse(lo + amount, hi);
    }

    /// Reverse `[lo, hi)`.
    pub fn reverse(&mut self, lo: usize, hi: usize) {
        let (mut a, mut b) = (lo, hi);
        while a + 1 < b {
            b -= 1;
            self.swap(a, b);
            a += 1;
        }
    }

    /// Snapshot of the data (no I/O charged; test oracle use).
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Mutable region view for local tasks (no I/O charged; callers
    /// account for the transfer separately).
    pub(crate) fn region_mut(&mut self, lo: usize, len: usize) -> &mut [u64] {
        &mut self.data[lo..lo + len]
    }

    /// The I/O counters accumulated so far.
    pub fn stats(&self) -> IoStats {
        IoStats {
            per_proc: self.ios.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: usize, b: usize, p: usize) -> PemConfig {
        PemConfig { m, b, p }
    }

    #[test]
    fn sequential_scan_costs_n_over_b() {
        let n = 4096usize;
        let mut arr = TrackedArray::from_sorted(n, cfg(256, 16, 1));
        for i in 0..n {
            arr.read(i);
        }
        assert_eq!(arr.stats().total(), (n / 16) as u64);
    }

    #[test]
    fn repeated_access_hits_cache() {
        let mut arr = TrackedArray::from_sorted(1024, cfg(256, 16, 1));
        for _ in 0..100 {
            arr.read(5);
        }
        assert_eq!(arr.stats().total(), 1);
    }

    #[test]
    fn thrash_when_working_set_exceeds_m() {
        // Two interleaved streams M apart with a cache of 2 blocks force
        // an eviction storm... capacity 2 blocks, 3 streams -> every
        // access in round-robin order misses.
        let mut arr = TrackedArray::from_sorted(3 * 64, cfg(32, 16, 1));
        for round in 0..10 {
            for s in 0..3 {
                arr.read(s * 64 + round);
            }
        }
        // 3 streams, 2-block cache, LRU: all 30 accesses miss except
        // within-block reuse (each block is touched 10 times in rounds
        // 0..10 but evicted in between; block changes every 16 rounds).
        assert_eq!(arr.stats().total(), 30);
    }

    #[test]
    fn per_proc_accounting() {
        let mut arr = TrackedArray::from_sorted(1024, cfg(64, 16, 4));
        for p in 0..4 {
            arr.set_proc(p);
            for i in 0..256 {
                arr.read(p * 256 + i);
            }
        }
        let stats = arr.stats();
        assert_eq!(stats.per_proc().len(), 4);
        for p in 0..4 {
            assert_eq!(stats.per_proc()[p], 16);
        }
        assert_eq!(stats.max_per_proc(), 16);
    }

    #[test]
    fn rotation_is_correct_and_blocked() {
        let n = 512usize;
        let mut arr = TrackedArray::from_sorted(n, cfg(64, 16, 1));
        arr.rotate_right(0, n, 100);
        let mut expect: Vec<u64> = (0..n as u64).collect();
        expect.rotate_right(100);
        assert_eq!(arr.data(), &expect[..]);
        // Three reversals -> about 3 * 2 * N/(2B) = 3N/B block loads
        // (each reversal streams from both ends).
        let io = arr.stats().total();
        assert!(io <= (3 * n / 16 + 8) as u64, "io = {io}");
    }
}
