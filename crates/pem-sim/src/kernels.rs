//! Instrumented replays of the six construction algorithms.
//!
//! Each kernel re-runs a construction algorithm against a
//! [`TrackedArray`], sharing every piece of index arithmetic with the
//! production crates (`ist_bits::rev_k`, `ist_shuffle::j_involution`,
//! `ist_gather::cycle_slot`, …). The permuted data is tested to be
//! identical to `ist-core`'s output, so the recorded I/Os measure the
//! real algorithms under the PEM cost model.
//!
//! Work is partitioned over the `P` virtual processors exactly as the
//! PRAM analyses assume: involution rounds split the index range into `P`
//! contiguous chunks; gather cycles and block fix-ups are dealt out in
//! contiguous groups; recursive subtree tasks rotate round-robin over
//! processors.

use crate::TrackedArray;
use ist_bits::{ilog2_floor, rev_k};
use ist_gather::cycle_slot;
use ist_layout::veb_split;
use ist_shuffle::j_involution;

/// Apply involution `f` (over global indices) on `[lo, hi)`, the index
/// range split into `P` contiguous per-processor chunks.
fn involution_round<F>(arr: &mut TrackedArray, lo: usize, hi: usize, f: F)
where
    F: Fn(usize) -> usize,
{
    let p = arr.procs();
    let len = hi - lo;
    for proc in 0..p {
        let a = lo + len * proc / p;
        let b = lo + len * (proc + 1) / p;
        arr.set_proc(proc);
        for i in a..b {
            let j = f(i);
            debug_assert!((lo..hi).contains(&j));
            if i < j {
                arr.swap(i, j);
            }
        }
    }
}

/// Involution-based BST construction (§2.1). `arr.len() = 2^d − 1`.
pub fn involution_bst(arr: &mut TrackedArray) {
    let n = arr.len();
    if n <= 1 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    involution_round(arr, 0, n, |s| (rev_k(2, d, (s + 1) as u64) - 1) as usize);
    involution_round(arr, 0, n, |s| {
        let p = (s + 1) as u64;
        (rev_k(2, ilog2_floor(p), p) - 1) as usize
    });
}

/// One padded k-way un-shuffle on `[0, n_cur)` via digit reversals (Ξ₁).
fn traced_unshuffle_pow(arr: &mut TrackedArray, n_cur: usize, k: usize, m: u32) {
    let kk = k as u64;
    involution_round(arr, 0, n_cur, |s| (rev_k(kk, m, (s + 1) as u64) - 1) as usize);
    involution_round(arr, 0, n_cur, |s| {
        (rev_k(kk, m - 1, (s + 1) as u64) - 1) as usize
    });
}

/// k-way perfect shuffle of `[lo, hi)` via `J` involutions (Ξ₂).
fn traced_shuffle_mod(arr: &mut TrackedArray, lo: usize, hi: usize, k: usize) {
    let len = hi - lo;
    if len <= 1 || k <= 1 {
        return;
    }
    debug_assert_eq!(len % k, 0);
    let nm1 = (len - 1) as u64;
    let kk = k as u64;
    involution_round(arr, lo, hi, |s| {
        lo + j_involution(1, nm1, (s - lo) as u64) as usize
    });
    involution_round(arr, lo, hi, |s| {
        lo + j_involution(kk, nm1, (s - lo) as u64) as usize
    });
}

/// Involution-based B-tree construction (§2.2). `arr.len() = (b+1)^m − 1`.
pub fn involution_btree(arr: &mut TrackedArray, b: usize) {
    let k = b + 1;
    let n = arr.len();
    let m = ist_bits::ilog(k as u64, n as u64 + 1);
    assert_eq!(k.pow(m), n + 1, "need n = (B+1)^m - 1");
    let mut mm = m;
    while mm >= 2 {
        let n_cur = k.pow(mm) - 1;
        traced_unshuffle_pow(arr, n_cur, k, mm);
        let r = k.pow(mm - 1) - 1;
        if b >= 2 {
            traced_shuffle_mod(arr, r, n_cur, b);
        }
        mm -= 1;
    }
}

/// Involution-based vEB construction (§2.3). `arr.len() = 2^d − 1`.
pub fn involution_veb(arr: &mut TrackedArray) {
    let n = arr.len();
    if n == 0 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    inv_veb_rec(arr, 0, d, 0);
}

fn inv_veb_rec(arr: &mut TrackedArray, lo: usize, d: u32, task: usize) {
    if d <= 1 {
        return;
    }
    let (t, bb) = veb_split(d);
    let k = 1usize << bb;
    let r = (1usize << t) - 1;
    let l = k - 1;
    let n_cur = (1usize << d) - 1;
    // Separate top keys to the front of the region. (The involution
    // helpers work on [0, n); shift by regenerating with offsets.)
    let off = lo;
    if d % bb == 0 {
        let kk = k as u64;
        let m = d / bb;
        involution_round(arr, off, off + n_cur, |s| {
            off + (rev_k(kk, m, (s - off + 1) as u64) - 1) as usize
        });
        involution_round(arr, off, off + n_cur, |s| {
            off + (rev_k(kk, m - 1, (s - off + 1) as u64) - 1) as usize
        });
    } else {
        let nm1 = n_cur as u64;
        let kk = k as u64;
        involution_round(arr, off, off + n_cur, |s| {
            off + (j_involution(kk, nm1, (s - off + 1) as u64) - 1) as usize
        });
        involution_round(arr, off, off + n_cur, |s| {
            off + (j_involution(1, nm1, (s - off + 1) as u64) - 1) as usize
        });
    }
    if l >= 2 {
        traced_shuffle_mod(arr, off + r, off + n_cur, l);
    }
    // Recurse: top, then each bottom subtree (round-robin processor hint
    // is implicit in involution_round's internal partitioning; recursion
    // tasks below a single processor's share run on one processor).
    inv_veb_rec(arr, lo, t, task);
    for q in 0..=r {
        inv_veb_rec(arr, lo + r + q * l, bb, task + 1 + q);
    }
}

/// Cycle-leader equidistant gather on a region, with cycles and block
/// fix-ups dealt across processors in contiguous groups (the practical
/// `O(B)-cycles-per-processor` scheme of §4.2).
fn traced_gather(arr: &mut TrackedArray, lo: usize, r: usize, l: usize) {
    let p = arr.procs();
    for proc in 0..p {
        let a = 1 + r * proc / p;
        let b = 1 + r * (proc + 1) / p;
        arr.set_proc(proc);
        for c in a..b {
            for m in (1..=c).rev() {
                arr.swap(lo + cycle_slot(m, c, l), lo + cycle_slot(m - 1, c, l));
            }
        }
    }
    for proc in 0..p {
        let a = (r + 1) * proc / p;
        let b = (r + 1) * (proc + 1) / p;
        arr.set_proc(proc);
        for j0 in a..b {
            let amount = (r - j0) % l; // (r + 1 - j) % l with j = j0 + 1
            let start = lo + r + j0 * l;
            arr.rotate_right(start, start + l, amount);
        }
    }
}

/// Chunked gather (chunks of `chunk` elements as units) on a region.
fn traced_gather_chunks(arr: &mut TrackedArray, lo: usize, r: usize, l: usize, chunk: usize) {
    let p = arr.procs();
    for proc in 0..p {
        let a = 1 + r * proc / p;
        let b = 1 + r * (proc + 1) / p;
        arr.set_proc(proc);
        for c in a..b {
            for m in (1..=c).rev() {
                let x = lo + cycle_slot(m, c, l) * chunk;
                let y = lo + cycle_slot(m - 1, c, l) * chunk;
                arr.swap_range(x, y, chunk);
            }
        }
    }
    for proc in 0..p {
        let a = (r + 1) * proc / p;
        let b = (r + 1) * (proc + 1) / p;
        arr.set_proc(proc);
        for j0 in a..b {
            let amount = ((r - j0) % l) * chunk;
            let start = lo + (r + j0 * l) * chunk;
            arr.rotate_right(start, start + l * chunk, amount);
        }
    }
}

/// Cycle-leader vEB construction (§3.1). `arr.len() = 2^d − 1`.
pub fn cycle_leader_veb(arr: &mut TrackedArray) {
    let n = arr.len();
    if n == 0 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    cl_veb_rec(arr, 0, d);
}

fn cl_veb_rec(arr: &mut TrackedArray, lo: usize, d: u32) {
    if d <= 1 {
        return;
    }
    let (t, bb) = veb_split(d);
    let r = (1usize << t) - 1;
    let l = (1usize << bb) - 1;
    let n_cur = (1usize << d) - 1;
    if t == bb {
        traced_gather(arr, lo, r, l);
    } else {
        let half = (n_cur - 1) / 2;
        traced_gather(arr, lo, l, l);
        traced_gather(arr, lo + half + 1, l, l);
        arr.rotate_right(lo + l, lo + l + half + 1, l + 1);
    }
    cl_veb_rec(arr, lo, t);
    for q in 0..=r {
        cl_veb_rec(arr, lo + r + q * l, bb);
    }
}

/// Cycle-leader B-tree construction (§3.2). `arr.len() = (b+1)^m − 1`.
pub fn cycle_leader_btree(arr: &mut TrackedArray, b: usize) {
    let k = b + 1;
    let n = arr.len();
    let m = ist_bits::ilog(k as u64, n as u64 + 1);
    assert_eq!(k.pow(m), n + 1, "need n = (B+1)^m - 1");
    let mut mm = m;
    while mm >= 2 {
        traced_extended_gather(arr, 0, b, mm);
        mm -= 1;
    }
}

/// Cycle-leader BST construction: B-tree with `B = 1` (§3.3).
pub fn cycle_leader_bst(arr: &mut TrackedArray) {
    let n = arr.len();
    if n <= 1 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    cycle_leader_btree(arr, 1);
}

fn traced_extended_gather(arr: &mut TrackedArray, lo: usize, b: usize, m: u32) {
    let k = b + 1;
    match m {
        0 | 1 => (),
        2 => traced_gather(arr, lo, b, b),
        _ => {
            let c = k.pow(m - 2);
            let part_len = c * k;
            traced_extended_gather_region(arr, lo, part_len - 1, b, m - 1);
            for p in 1..k {
                let start = lo + part_len - 1 + (p - 1) * part_len;
                traced_extended_gather_region(arr, start + 1, part_len - 1, b, m - 1);
            }
            traced_gather_chunks(arr, lo + c - 1, b, b, c);
        }
    }
}

fn traced_extended_gather_region(arr: &mut TrackedArray, lo: usize, _len: usize, b: usize, m: u32) {
    traced_extended_gather(arr, lo, b, m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PemConfig, TrackedArray};
    use ist_core::{reference_permutation, Layout};

    fn cfg(m: usize, b: usize, p: usize) -> PemConfig {
        PemConfig { m, b, p }
    }

    fn sorted(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn traced_kernels_match_production_permutations() {
        let n = (1usize << 12) - 1;
        let expect_bst = reference_permutation(&sorted(n), Layout::Bst);
        let expect_veb = reference_permutation(&sorted(n), Layout::Veb);
        for p in [1usize, 4] {
            let c = cfg(256, 8, p);
            let mut a = TrackedArray::from_sorted(n, c);
            involution_bst(&mut a);
            assert_eq!(a.data(), &expect_bst[..], "inv bst p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            cycle_leader_bst(&mut a);
            assert_eq!(a.data(), &expect_bst[..], "cl bst p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            involution_veb(&mut a);
            assert_eq!(a.data(), &expect_veb[..], "inv veb p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            cycle_leader_veb(&mut a);
            assert_eq!(a.data(), &expect_veb[..], "cl veb p={p}");
        }
        let b = 3usize;
        let n = 4usize.pow(6) - 1;
        let expect = reference_permutation(&sorted(n), Layout::Btree { b });
        for p in [1usize, 4] {
            let c = cfg(256, 8, p);
            let mut a = TrackedArray::from_sorted(n, c);
            involution_btree(&mut a, b);
            assert_eq!(a.data(), &expect[..], "inv btree p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            cycle_leader_btree(&mut a, b);
            assert_eq!(a.data(), &expect[..], "cl btree p={p}");
        }
    }

    #[test]
    fn cycle_leader_is_more_io_efficient_than_involutions() {
        // Chapter 4's central claim: the cycle-leader algorithms save a
        // factor ~B of I/Os over the involution algorithms (streamed
        // blocked swaps vs scattered swaps), once N >> M.
        let n = (1usize << 14) - 1;
        let c = cfg(128, 16, 1);
        let mut inv = TrackedArray::from_sorted(n, c);
        involution_veb(&mut inv);
        let mut cl = TrackedArray::from_sorted(n, c);
        cycle_leader_veb(&mut cl);
        let (qi, qc) = (inv.stats().total(), cl.stats().total());
        // The traced gather is the practical non-transposed variant, so
        // its stage-1 cycles still stride; the savings come from the
        // blocked rotations (factor ~2.5-3x here; the full factor-B gap
        // needs the transpose optimization of §4.2).
        assert!(
            qc * 2 < qi,
            "cycle-leader should be much cheaper: inv={qi} cl={qc}"
        );
    }

    #[test]
    fn everything_cached_when_m_exceeds_n() {
        // With M >= N the whole array fits: I/O ~= one load, N/B.
        let n = (1usize << 10) - 1;
        let c = cfg(1 << 12, 16, 1);
        let mut arr = TrackedArray::from_sorted(n, c);
        involution_bst(&mut arr);
        let io = arr.stats().total();
        assert!(io <= 2 * (n / 16 + 2) as u64, "io = {io}");
    }

    #[test]
    fn parallel_splits_reduce_max_per_proc() {
        let n = (1usize << 14) - 1;
        let mut one = TrackedArray::from_sorted(n, cfg(256, 16, 1));
        involution_bst(&mut one);
        let mut four = TrackedArray::from_sorted(n, cfg(256, 16, 4));
        involution_bst(&mut four);
        let q1 = one.stats().max_per_proc();
        let q4 = four.stats().max_per_proc();
        assert!(
            (q4 as f64) < 0.5 * q1 as f64,
            "expected near-linear Q drop: q1={q1} q4={q4}"
        );
    }

    #[test]
    fn btree_cycle_leader_io_scales_like_n_over_b_log() {
        // Q(N,1) = O((N/B) log_{B+1}(N/K)); doubling N slightly more
        // than doubles the I/Os. Sanity-check monotone growth and the
        // rough magnitude.
        let c = cfg(512, 16, 1);
        let b = 3usize;
        let mut prev = 0u64;
        for m in 4..7u32 {
            let n = 4usize.pow(m) - 1;
            let mut arr = TrackedArray::from_sorted(n, c);
            cycle_leader_btree(&mut arr, b);
            let q = arr.stats().total();
            assert!(q > prev);
            prev = q;
            let bound = (n as f64 / 16.0) * (m as f64) * 8.0;
            assert!((q as f64) < bound, "m={m} q={q} bound={bound}");
        }
    }
}
