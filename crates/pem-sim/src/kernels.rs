//! PEM-instrumented construction runs.
//!
//! These entry points drive the **single** generic implementation of each
//! construction algorithm (`ist_core::algorithms`) on the
//! [`TrackedArray`] cost backend — there is no separate instrumented
//! replica to keep in sync. The recorded I/Os therefore measure the real
//! algorithms under the PEM cost model by construction; the permuted
//! array is bit-identical to the production output (asserted below and by
//! the workspace equivalence tests).
//!
//! Work is partitioned over the `P` virtual processors exactly as the
//! PRAM analyses assume — see the [`crate::TrackedArray`] `Machine`
//! implementation. Arbitrary (non-perfect) input sizes are supported via
//! the same Chapter-5 stripping pass the production path runs.

use crate::TrackedArray;
use ist_core::{construct, Algorithm, Layout};

fn run(arr: &mut TrackedArray, layout: Layout, algorithm: Algorithm) {
    construct(arr, layout, algorithm).expect("valid construction parameters");
}

/// Involution-based BST construction (§2.1).
pub fn involution_bst(arr: &mut TrackedArray) {
    run(arr, Layout::Bst, Algorithm::Involution);
}

/// Involution-based B-tree construction (§2.2) with `b` keys per node.
pub fn involution_btree(arr: &mut TrackedArray, b: usize) {
    run(arr, Layout::Btree { b }, Algorithm::Involution);
}

/// Involution-based vEB construction (§2.3).
pub fn involution_veb(arr: &mut TrackedArray) {
    run(arr, Layout::Veb, Algorithm::Involution);
}

/// Cycle-leader BST construction: B-tree with `B = 1` (§3.3).
pub fn cycle_leader_bst(arr: &mut TrackedArray) {
    run(arr, Layout::Bst, Algorithm::CycleLeader);
}

/// Cycle-leader B-tree construction (§3.2) with `b` keys per node.
pub fn cycle_leader_btree(arr: &mut TrackedArray, b: usize) {
    run(arr, Layout::Btree { b }, Algorithm::CycleLeader);
}

/// Cycle-leader vEB construction (§3.1).
pub fn cycle_leader_veb(arr: &mut TrackedArray) {
    run(arr, Layout::Veb, Algorithm::CycleLeader);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PemConfig, TrackedArray};
    use ist_core::{reference_permutation, Layout};

    fn cfg(m: usize, b: usize, p: usize) -> PemConfig {
        PemConfig { m, b, p }
    }

    fn sorted(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn traced_kernels_match_production_permutations() {
        let n = (1usize << 12) - 1;
        let expect_bst = reference_permutation(&sorted(n), Layout::Bst);
        let expect_veb = reference_permutation(&sorted(n), Layout::Veb);
        for p in [1usize, 4] {
            let c = cfg(256, 8, p);
            let mut a = TrackedArray::from_sorted(n, c);
            involution_bst(&mut a);
            assert_eq!(a.data(), &expect_bst[..], "inv bst p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            cycle_leader_bst(&mut a);
            assert_eq!(a.data(), &expect_bst[..], "cl bst p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            involution_veb(&mut a);
            assert_eq!(a.data(), &expect_veb[..], "inv veb p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            cycle_leader_veb(&mut a);
            assert_eq!(a.data(), &expect_veb[..], "cl veb p={p}");
        }
        let b = 3usize;
        let n = 4usize.pow(6) - 1;
        let expect = reference_permutation(&sorted(n), Layout::Btree { b });
        for p in [1usize, 4] {
            let c = cfg(256, 8, p);
            let mut a = TrackedArray::from_sorted(n, c);
            involution_btree(&mut a, b);
            assert_eq!(a.data(), &expect[..], "inv btree p={p}");
            let mut a = TrackedArray::from_sorted(n, c);
            cycle_leader_btree(&mut a, b);
            assert_eq!(a.data(), &expect[..], "cl btree p={p}");
        }
    }

    #[test]
    fn nonperfect_sizes_are_traced_too() {
        // The Chapter-5 stripping pass now runs under the cost model as
        // well, so arbitrary sizes work on every backend.
        for n in [10usize, 100, 1000, 5000] {
            let c = cfg(256, 8, 2);
            for layout in [Layout::Bst, Layout::Veb, Layout::Btree { b: 3 }] {
                let expect = reference_permutation(&sorted(n), layout);
                for (name, algo) in [
                    ("involution", Algorithm::Involution),
                    ("cycle_leader", Algorithm::CycleLeader),
                ] {
                    let mut a = TrackedArray::from_sorted(n, c);
                    super::run(&mut a, layout, algo);
                    assert_eq!(a.data(), &expect[..], "{name} {layout:?} n={n}");
                    assert!(
                        a.stats().total() > 0,
                        "{name} {layout:?} n={n}: no I/O charged"
                    );
                }
            }
        }
    }

    #[test]
    fn cycle_leader_is_more_io_efficient_than_involutions() {
        // Chapter 4's central claim: the cycle-leader algorithms save a
        // factor ~B of I/Os over the involution algorithms (streamed
        // blocked swaps vs scattered swaps), once N >> M.
        let n = (1usize << 14) - 1;
        let c = cfg(128, 16, 1);
        let mut inv = TrackedArray::from_sorted(n, c);
        involution_veb(&mut inv);
        let mut cl = TrackedArray::from_sorted(n, c);
        cycle_leader_veb(&mut cl);
        let (qi, qc) = (inv.stats().total(), cl.stats().total());
        // The traced gather is the practical non-transposed variant, so
        // its stage-1 cycles still stride; the savings come from the
        // blocked rotations (factor ~2.5-3x here; the full factor-B gap
        // needs the transpose optimization of §4.2).
        assert!(
            qc * 2 < qi,
            "cycle-leader should be much cheaper: inv={qi} cl={qc}"
        );
    }

    #[test]
    fn everything_cached_when_m_exceeds_n() {
        // With M >= N the whole array fits: I/O ~= one load, N/B.
        let n = (1usize << 10) - 1;
        let c = cfg(1 << 12, 16, 1);
        let mut arr = TrackedArray::from_sorted(n, c);
        involution_bst(&mut arr);
        let io = arr.stats().total();
        assert!(io <= 2 * (n / 16 + 2) as u64, "io = {io}");
    }

    #[test]
    fn parallel_splits_reduce_max_per_proc() {
        let n = (1usize << 14) - 1;
        let mut one = TrackedArray::from_sorted(n, cfg(256, 16, 1));
        involution_bst(&mut one);
        let mut four = TrackedArray::from_sorted(n, cfg(256, 16, 4));
        involution_bst(&mut four);
        let q1 = one.stats().max_per_proc();
        let q4 = four.stats().max_per_proc();
        assert!(
            (q4 as f64) < 0.5 * q1 as f64,
            "expected near-linear Q drop: q1={q1} q4={q4}"
        );
    }

    #[test]
    fn btree_cycle_leader_io_scales_like_n_over_b_log() {
        // Q(N,1) = O((N/B) log_{B+1}(N/K)); doubling N slightly more
        // than doubles the I/Os. Sanity-check monotone growth and the
        // rough magnitude.
        let c = cfg(512, 16, 1);
        let b = 3usize;
        let mut prev = 0u64;
        for m in 4..7u32 {
            let n = 4usize.pow(m) - 1;
            let mut arr = TrackedArray::from_sorted(n, c);
            cycle_leader_btree(&mut arr, b);
            let q = arr.stats().total();
            assert!(q > prev);
            prev = q;
            let bound = (n as f64 / 16.0) * (m as f64) * 8.0;
            assert!((q as f64) < bound, "m={m} q={q} bound={bound}");
        }
    }
}
