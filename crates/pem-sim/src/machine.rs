//! [`Machine`] implementation for [`TrackedArray`]: the PEM cost backend.
//!
//! Each primitive partitions its work over the `P` virtual processors
//! exactly as the PRAM/PEM analyses assume — involution rounds split the
//! index range into `P` contiguous chunks; gather cycles and block
//! fix-ups are dealt out in contiguous groups; recursive subtree tasks
//! run in task order (the PEM model charges `Q` as the max over
//! processors of *block transfers*, which the per-access LRU accounting
//! in [`TrackedArray`] captures; scheduling order does not matter).
//!
//! The construction control flow itself lives in `ist_core::algorithms`;
//! this file only decides *how each primitive is priced and dealt out*,
//! which is what makes the recorded I/Os a measurement of the real
//! algorithms rather than of a hand-maintained replica.

use crate::TrackedArray;
use ist_gather::cycle_slot;
use ist_machine::{GatherMode, IndexArith, Machine, Region};

impl Machine for TrackedArray {
    type Elem = u64;

    fn len(&self) -> usize {
        TrackedArray::len(self)
    }

    /// One involution round, the index range split into `P` contiguous
    /// per-processor chunks.
    fn involution_round<F>(&mut self, lo: usize, hi: usize, _arith: IndexArith, f: F)
    where
        F: Fn(usize) -> usize + Sync,
    {
        let p = self.procs();
        let len = hi - lo;
        for proc in 0..p {
            let a = lo + len * proc / p;
            let b = lo + len * (proc + 1) / p;
            self.set_proc(proc);
            for i in a..b {
                let j = f(i);
                debug_assert!((lo..hi).contains(&j));
                if i < j {
                    self.swap(i, j);
                }
            }
        }
    }

    /// Cycle-leader equidistant gather with cycles and block fix-ups
    /// dealt across processors in contiguous groups (the practical
    /// `O(B)`-cycles-per-processor scheme of §4.2). `GatherMode` is
    /// launch-batching metadata; the PEM model has no launch cost.
    fn gather(&mut self, lo: usize, r: usize, l: usize, _mode: GatherMode) {
        if r == 0 {
            return;
        }
        let p = self.procs();
        for proc in 0..p {
            let a = 1 + r * proc / p;
            let b = 1 + r * (proc + 1) / p;
            self.set_proc(proc);
            for c in a..b {
                for m in (1..=c).rev() {
                    self.swap(lo + cycle_slot(m, c, l), lo + cycle_slot(m - 1, c, l));
                }
            }
        }
        for proc in 0..p {
            let a = (r + 1) * proc / p;
            let b = (r + 1) * (proc + 1) / p;
            self.set_proc(proc);
            for j0 in a..b {
                let amount = (r - j0) % l; // (r + 1 - j) % l with j = j0 + 1
                let start = lo + r + j0 * l;
                TrackedArray::rotate_right(self, start, start + l, amount);
            }
        }
    }

    /// Chunked gather (chunks of `chunk` elements as units): every move
    /// is a streaming `chunk`-element block swap.
    fn gather_chunks(&mut self, lo: usize, r: usize, l: usize, chunk: usize, _mode: GatherMode) {
        if r == 0 {
            return;
        }
        let p = self.procs();
        for proc in 0..p {
            let a = 1 + r * proc / p;
            let b = 1 + r * (proc + 1) / p;
            self.set_proc(proc);
            for c in a..b {
                for m in (1..=c).rev() {
                    let x = lo + cycle_slot(m, c, l) * chunk;
                    let y = lo + cycle_slot(m - 1, c, l) * chunk;
                    self.swap_range(x, y, chunk);
                }
            }
        }
        for proc in 0..p {
            let a = (r + 1) * proc / p;
            let b = (r + 1) * (proc + 1) / p;
            self.set_proc(proc);
            for j0 in a..b {
                let amount = ((r - j0) % l) * chunk;
                let start = lo + (r + j0 * l) * chunk;
                TrackedArray::rotate_right(self, start, start + l * chunk, amount);
            }
        }
    }

    fn rotate_right(&mut self, lo: usize, hi: usize, amount: usize) {
        TrackedArray::rotate_right(self, lo, hi, amount);
    }

    /// Recursive subtree tasks run in order on the simulated machine;
    /// involution/gather rounds inside them re-deal their own work over
    /// all `P` processors, matching the analyses' static partitioning.
    fn run_tasks<K, F>(&mut self, tasks: Vec<Region<K>>, f: F)
    where
        K: Send + Sync,
        F: Fn(&mut Self, &Region<K>) + Sync,
    {
        for task in &tasks {
            f(self, task);
        }
    }

    /// Local tasks are disabled (`local_threshold` = 0 by default): the
    /// PEM simulator traces every access of every subtree. The
    /// implementation still behaves sensibly if ever enabled — one
    /// streaming read pass over the region, then the in-memory
    /// permutation applied at no further I/O charge (internal memory
    /// work).
    fn local_task<F>(&mut self, lo: usize, len: usize, f: F)
    where
        F: FnOnce(&mut [u64]),
    {
        for i in lo..lo + len {
            self.read(i);
        }
        f(self.region_mut(lo, len));
    }
}
