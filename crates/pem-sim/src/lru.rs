//! A compact fully-associative LRU block cache.
//!
//! Models one processor's internal memory in the (P)EM model: capacity is
//! `M / B` blocks; an access to a resident block is free, a miss costs one
//! block transfer and evicts the least-recently-used block when full.
//!
//! Implementation: an intrusive doubly-linked list over a slot arena plus
//! a block→slot hash map; all operations are `O(1)`.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// Fully-associative LRU set of block ids.
///
/// # Examples
/// ```
/// use ist_pem_sim::LruCache;
/// let mut c = LruCache::new(2);
/// assert!(!c.access(1)); // miss
/// assert!(!c.access(2)); // miss
/// assert!(c.access(1));  // hit
/// assert!(!c.access(3)); // miss, evicts 2 (LRU)
/// assert!(!c.access(2)); // miss again
/// assert!(c.access(3));  // 3 still resident
/// ```
pub struct LruCache {
    capacity: usize,
    map: HashMap<usize, usize>, // block id -> slot
    block: Vec<usize>,          // slot -> block id
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruCache {
    /// Cache holding up to `capacity` blocks (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache must hold at least one block");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity * 2),
            block: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Touch `block_id`; returns `true` on a hit, `false` on a miss (the
    /// block is then loaded, evicting the LRU block if the cache is
    /// full).
    pub fn access(&mut self, block_id: usize) -> bool {
        if let Some(&slot) = self.map.get(&block_id) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        // Miss: allocate or recycle a slot.
        let slot = if self.block.len() < self.capacity {
            self.block.push(block_id);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.block.len() - 1
        } else {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.block[victim]);
            self.block[victim] = block_id;
            victim
        };
        self.map.insert(block_id, slot);
        self.push_front(slot);
        false
    }

    /// Drop all resident blocks (e.g. between independent phases).
    pub fn clear(&mut self) {
        self.map.clear();
        self.block.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_order() {
        let mut c = LruCache::new(3);
        for b in [1, 2, 3] {
            assert!(!c.access(b));
        }
        // Touch 1 -> order (1, 3, 2); inserting 4 evicts 2.
        assert!(c.access(1));
        assert!(!c.access(4));
        assert!(c.access(1));
        assert!(c.access(3));
        assert!(!c.access(2));
    }

    #[test]
    fn capacity_one() {
        let mut c = LruCache::new(1);
        assert!(!c.access(7));
        assert!(c.access(7));
        assert!(!c.access(8));
        assert!(!c.access(7));
    }

    #[test]
    fn matches_naive_reference() {
        // Cross-check against an O(cap) reference on a pseudo-random trace.
        struct Naive {
            cap: usize,
            items: Vec<usize>, // most recent first
        }
        impl Naive {
            fn access(&mut self, b: usize) -> bool {
                if let Some(pos) = self.items.iter().position(|&x| x == b) {
                    self.items.remove(pos);
                    self.items.insert(0, b);
                    true
                } else {
                    self.items.insert(0, b);
                    self.items.truncate(self.cap);
                    false
                }
            }
        }
        let mut fast = LruCache::new(8);
        let mut slow = Naive {
            cap: 8,
            items: vec![],
        };
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 33) as usize % 24;
            assert_eq!(fast.access(b), slow.access(b));
        }
        assert_eq!(fast.len(), 8);
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.access(1));
    }
}
