//! A financial tick-store index (the paper cites finance as a domain
//! with search-heavy static data): one immutable array of timestamps per
//! trading day, probed by analytics jobs with large *batches* of
//! point-in-time lookups and time-window counts.
//!
//! This example drives the [`StaticIndex`] facade end to end: it owns
//! the tick buffer, sorts + permutes it **in place** (no 2x memory
//! spike on the ingest node), and serves batched lookups on the
//! software-pipelined multi-descent engine plus range counts via rank
//! descents. The tick count is deliberately not a perfect-tree size.
//!
//! ```text
//! cargo run --release --example tick_index
//! ```

use implicit_search_trees::{Layout, StaticIndex};
use std::time::Instant;

/// Synthetic trading day: strictly increasing nanosecond timestamps with
/// bursty gaps. The count is deliberately not a perfect-tree size.
fn trading_day(ticks: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    let mut t = 34_200_000_000_000u64; // 09:30:00 in ns
    (0..ticks)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += 1 + x % 50_000; // up to 50 µs between ticks
            t
        })
        .collect()
}

fn main() {
    let ticks = 3_333_333usize; // decidedly non-perfect
    let day = trading_day(ticks, 0xfeed);
    println!("tick index: {ticks} timestamps (non-perfect tree size)\n");

    // Lookups: a mix of exact tick timestamps (hits) and arbitrary
    // points in time (misses).
    let queries: Vec<u64> = day
        .iter()
        .step_by(7)
        .copied()
        .chain(day.iter().step_by(11).map(|t| t + 1))
        .collect();

    // One-minute windows across the session, counted via two rank
    // descents each — no scan of the window contents.
    let minute = 60_000_000_000u64;
    let windows: Vec<(u64, u64)> = (0..390) // 6.5 trading hours
        .map(|m| {
            let start = 34_200_000_000_000u64 + m * minute;
            (start, start + minute)
        })
        .collect();

    for (label, layout) in [
        ("vEB (cache-oblivious)", Layout::Veb),
        ("B-tree (B = 8)", Layout::Btree { b: 8 }),
    ] {
        let t0 = Instant::now();
        // In place: the index lives in the same buffer the ticks loaded
        // into; no second allocation on the ingest node.
        let index = StaticIndex::build(day.clone(), layout).unwrap();
        let built = t0.elapsed();

        let t0 = Instant::now();
        let hits = index.batch_count(&queries); // pipelined + parallel
        let batch = t0.elapsed();

        let t0 = Instant::now();
        let per_minute = index.batch_range_count(&windows);
        let ranged = t0.elapsed();

        let expected_hits = day.iter().step_by(7).count();
        assert!(hits >= expected_hits); // +1 queries may also collide with real ticks
        assert_eq!(per_minute.iter().sum::<usize>(), ticks); // windows tile the session
        let busiest = per_minute.iter().max().unwrap();
        println!(
            "{label:<22}: built in {built:>9.3?}, {} lookups in {batch:>9.3?} ({hits} hits), \
             390 window counts in {ranged:>9.3?} (busiest minute: {busiest} ticks)",
            queries.len()
        );
    }

    println!("\nnon-perfect sizes are stored as [perfect layout | sorted overflow leaves]");
}
