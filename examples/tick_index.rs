//! A financial tick-store index (the paper cites finance as a domain
//! with search-heavy static data): one immutable array of timestamps per
//! trading day, probed by analytics jobs with large *batches* of
//! point-in-time lookups.
//!
//! This example exercises the parallel batch-query path and the
//! non-perfect-tree handling (a trading day rarely produces 2^k − 1
//! ticks), and demonstrates the memory argument for in-place
//! construction: the layouts are built inside the same allocation the
//! ticks were loaded into.
//!
//! ```text
//! cargo run --release --example tick_index
//! ```

use implicit_search_trees::{permute_in_place, Algorithm, Layout, Searcher};
use std::time::Instant;

/// Synthetic trading day: strictly increasing nanosecond timestamps with
/// bursty gaps. The count is deliberately not a perfect-tree size.
fn trading_day(ticks: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    let mut t = 34_200_000_000_000u64; // 09:30:00 in ns
    (0..ticks)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t += 1 + x % 50_000; // up to 50 µs between ticks
            t
        })
        .collect()
}

fn main() {
    let ticks = 3_333_333usize; // decidedly non-perfect
    let day = trading_day(ticks, 0xfeed);
    println!("tick index: {ticks} timestamps (non-perfect tree size)\n");

    // Lookups: a mix of exact tick timestamps (hits) and arbitrary
    // points in time (misses).
    let queries: Vec<u64> = day
        .iter()
        .step_by(7)
        .copied()
        .chain(day.iter().step_by(11).map(|t| t + 1))
        .collect();

    for (label, layout) in [
        ("vEB (cache-oblivious)", Layout::Veb),
        ("B-tree (B = 8)", Layout::Btree { b: 8 }),
    ] {
        let mut index = day.clone();
        let t0 = Instant::now();
        // In place: the index lives in the same buffer the ticks loaded
        // into; no 2x memory spike on the ingest node.
        permute_in_place(&mut index, layout, Algorithm::CycleLeader).unwrap();
        let built = t0.elapsed();

        let searcher = Searcher::for_layout(&index, layout);
        let t0 = Instant::now();
        let hits = searcher.batch_count(&queries); // parallel batch
        let batch = t0.elapsed();

        let expected_hits = day.iter().step_by(7).count();
        assert!(hits >= expected_hits); // +1 queries may also collide with real ticks
        println!(
            "{label:<22}: built in {built:>9.3?}, {} lookups in {batch:>9.3?} ({hits} hits)",
            queries.len()
        );
    }

    println!("\nnon-perfect sizes are stored as [perfect layout | sorted overflow leaves]");
}
