//! A financial tick-store (the paper cites finance as a domain with
//! search-heavy static data): one immutable array of timestamps per
//! trading day, each carrying its trade `(price, size)`, probed by
//! analytics jobs with large *batches* of point-in-time lookups and
//! time-window counts.
//!
//! This example drives the [`StaticMap`] facade end to end: it owns the
//! tick buffers, sorts + permutes timestamps **and** payloads in place
//! (no 2x memory spike on the ingest node — the payloads ride the
//! layout's oblivious permutation and are never compared), and serves
//! batched timestamp→trade lookups on the software-pipelined
//! multi-descent engine, plus window counts via rank descents and
//! as-of lookups via predecessor descents. The tick count is
//! deliberately not a perfect-tree size.
//!
//! ```text
//! cargo run --release --example tick_index
//! ```

use implicit_search_trees::{Layout, StaticMap};
use std::time::Instant;

/// One trade: the payload stored under its timestamp.
#[derive(Clone, Copy)]
struct Trade {
    /// Price in hundredths of a cent.
    price: u32,
    /// Shares.
    size: u32,
}

/// Synthetic trading day: strictly increasing nanosecond timestamps with
/// bursty gaps, each with a trade. The count is deliberately not a
/// perfect-tree size.
fn trading_day(ticks: usize, seed: u64) -> (Vec<u64>, Vec<Trade>) {
    let mut x = seed | 1;
    let mut t = 34_200_000_000_000u64; // 09:30:00 in ns
    let mut times = Vec::with_capacity(ticks);
    let mut trades = Vec::with_capacity(ticks);
    for _ in 0..ticks {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1 + x % 50_000; // up to 50 µs between ticks
        times.push(t);
        trades.push(Trade {
            price: 150_000 + (x % 2_000) as u32,
            size: 1 + (x % 900) as u32,
        });
    }
    (times, trades)
}

fn main() {
    let ticks = 3_333_333usize; // decidedly non-perfect
    let (day, trades) = trading_day(ticks, 0xfeed);
    println!("tick store: {ticks} timestamps -> (price, size) (non-perfect tree size)\n");

    // Lookups: a mix of exact tick timestamps (hits) and arbitrary
    // points in time (misses).
    let queries: Vec<u64> = day
        .iter()
        .step_by(7)
        .copied()
        .chain(day.iter().step_by(11).map(|t| t + 1))
        .collect();

    // One-minute windows across the session, counted via two rank
    // descents each — no scan of the window contents.
    let minute = 60_000_000_000u64;
    let windows: Vec<(u64, u64)> = (0..390) // 6.5 trading hours
        .map(|m| {
            let start = 34_200_000_000_000u64 + m * minute;
            (start, start + minute)
        })
        .collect();

    for (label, layout) in [
        ("vEB (cache-oblivious)", Layout::Veb),
        ("B-tree (B = 8)", Layout::Btree { b: 8 }),
    ] {
        let t0 = Instant::now();
        // In place: the index lives in the buffers the ticks loaded
        // into; the trades follow the timestamps through the oblivious
        // permutation without a single comparison.
        let map = StaticMap::build(day.clone(), trades.clone(), layout).unwrap();
        let built = t0.elapsed();

        let t0 = Instant::now();
        let looked_up = map.batch_get(&queries); // pipelined + parallel
        let batch = t0.elapsed();
        let hits = looked_up.iter().filter(|t| t.is_some()).count();
        let volume: u64 = looked_up.iter().flatten().map(|t| t.size as u64).sum();

        let t0 = Instant::now();
        let per_minute = map.batch_range_count(&windows);
        let ranged = t0.elapsed();

        // As-of join primitive: the last trade at or before a point in
        // time is predecessor(t + 1).
        let (ts, last) = map.predecessor(&(day[ticks / 2] + 1)).unwrap();
        assert_eq!(*ts, day[ticks / 2]);

        let expected_hits = day.iter().step_by(7).count();
        assert!(hits >= expected_hits); // +1 queries may also collide with real ticks
        assert_eq!(per_minute.iter().sum::<usize>(), ticks); // windows tile the session
        let busiest = per_minute.iter().max().unwrap();
        println!(
            "{label:<22}: built in {built:>9.3?}, {} lookups in {batch:>9.3?} \
             ({hits} hits, {volume} shares), 390 window counts in {ranged:>9.3?} \
             (busiest minute: {busiest} ticks, as-of price {:.2})",
            queries.len(),
            last.price as f64 / 10_000.0
        );
    }

    println!("\nnon-perfect sizes are stored as [perfect layout | sorted overflow leaves]");
}
