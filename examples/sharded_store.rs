//! A sharded serving front-end: [`ShardedMap`] fanning one workload
//! over range-partitioned [`DynamicMap`] shards.
//!
//! The single-map `session_store` example shows one write buffer and
//! one background compactor; this one puts a 4-shard router in front:
//!
//! 1. bulk-load a user→balance table, split at equal-count boundaries,
//!    under a write-tuned [`CompactionPolicy`] applied to every shard,
//! 2. churn it with writes that hash across all shards (each shard
//!    seals and compacts independently, in the background),
//!    2b. ingest a bulk delta (`batch_insert` / `batch_remove`): the
//!    router partitions the batch by shard ranges and each shard takes
//!    one sorted sub-batch — shards proceed in parallel, and the
//!    returned live-before counts sum exactly across shards because
//!    the range partition makes per-shard answers disjoint,
//! 3. serve batched reads and global order statistics whose inputs
//!    straddle every shard boundary — answers are bit-identical to an
//!    unsharded map,
//! 4. quiesce and show where the versions settled, per shard.
//!
//! Run with `cargo run --example sharded_store --release`.
//!
//! [`DynamicMap`]: implicit_search_trees::DynamicMap

use implicit_search_trees::{CompactionPolicy, Layout, ShardedMap};

fn main() {
    // --- 1. bulk load, 4 range-partitioned shards ----------------------
    let users: Vec<u64> = (0..400_000u64).map(|u| 5 * u).collect();
    let balances: Vec<u64> = users.iter().map(|u| 1_000 + u % 997).collect();
    let mut store: ShardedMap<u64, u64> = ShardedMap::build(users, balances, Layout::Veb, 4)
        .expect("valid layout")
        // Applied to every shard: tiering bounds write amplification
        // and the lazy bottom keeps churn from rewriting each shard's
        // big bulk-loaded run.
        .with_policy(CompactionPolicy::tiered(4).with_lazy_bottom(true));
    println!(
        "bulk-loaded {} accounts into {} shards (splits at {:?}), per-shard: {:?}",
        store.len(),
        store.shard_count(),
        store.splits(),
        store.shard_lens()
    );

    // --- 2. churn: writes land on every shard --------------------------
    for i in 0..120_000u64 {
        let user = (i * 2_654_435_761) % 2_400_000; // hashes across all shards
        match i % 6 {
            0..=3 => store.insert(user, 1_000 + i % 997), // deposits / new accounts
            4 => store.insert(5 * (i % 400_000), i),      // updates of loaded accounts
            _ => store.remove(&(5 * (i % 400_000))),      // closures (tombstones)
        };
    }
    println!(
        "after 120k writes: {} live accounts, compaction in flight: {}",
        store.len(),
        store.compaction_in_flight()
    );

    // --- 2b. bulk delta: one partner file, routed across shards --------
    // Interest accrual for users ≡ 2 mod 5 (never bulk-loaded) plus a
    // closure sweep — one call each; the router scatters both by shard
    // range, so every shard ingests its sub-batch with a single sort
    // and one pipelined weight sweep per resident run.
    let accruals: Vec<(u64, u64)> = (0..60_000u64).map(|u| (5 * u + 2, 1_000 + u)).collect();
    let already_live = store.batch_insert(accruals);
    let closed = store.batch_remove(&(0..30_000u64).map(|u| 5 * u).collect::<Vec<_>>());
    println!(
        "bulk delta: 60k accruals ({already_live} were already live), \
         30k closure attempts ({closed} were live) -> {} live accounts",
        store.len()
    );

    // --- 3. batched serving straddling every boundary ------------------
    let probes: Vec<u64> = (0..20_000u64).map(|i| (i * 131) % 2_400_000).collect();
    let hits = store.batch_get(&probes).iter().flatten().count();
    println!("batched lookup: {hits}/{} probes live", probes.len());
    let spans: Vec<(u64, u64)> = store
        .splits()
        .iter()
        .map(|&s| (s.saturating_sub(50_000), s + 50_000)) // each crosses a boundary
        .collect();
    let counts = store.batch_range_count(&spans);
    for ((lo, hi), c) in spans.iter().zip(&counts) {
        println!("  accounts in [{lo}, {hi}): {c}");
    }
    // Global ranks are exact across shards (range-partition invariant).
    let mid = store.splits()[1];
    assert_eq!(
        store.rank(&mid),
        store.shard_lens()[..2].iter().sum::<usize>(),
        "rank at a split key is exactly the mass of the shards below it"
    );

    // --- 4. drain the background workers and inspect -------------------
    store.quiesce();
    assert!(!store.compaction_in_flight());
    println!(
        "after quiesce: {} live accounts, per-shard: {:?}",
        store.len(),
        store.shard_lens()
    );
}
