//! Inspect the algorithms under the PEM I/O model and the GPU cost
//! model — the analytic side of the paper (Table 1.1, Figure 6.8)
//! without wall clocks.
//!
//! ```text
//! cargo run --release --example io_model
//! ```

use implicit_search_trees::gpu_sim::{kernels as gpu, Gpu, GpuConfig};
use implicit_search_trees::pem_sim::{kernels as pem, PemConfig, TrackedArray};

fn main() {
    // --- PEM model: count block transfers per algorithm. -------------
    let n = (1usize << 16) - 1;
    let cfg = PemConfig {
        m: 2048,
        b: 16,
        p: 1,
    };
    println!(
        "PEM I/O counts (N = {n}, M = {} words, B = {} words):",
        cfg.m, cfg.b
    );

    type PemRun = fn(&mut TrackedArray);
    let runs: Vec<(&str, PemRun)> = vec![
        ("involution BST", |a| pem::involution_bst(a)),
        ("involution vEB", |a| pem::involution_veb(a)),
        ("cycle-leader BST", |a| pem::cycle_leader_bst(a)),
        ("cycle-leader vEB", |a| pem::cycle_leader_veb(a)),
    ];
    let scan = (n / cfg.b) as u64; // one streaming pass = N/B I/Os
    for (name, run) in runs {
        let mut arr = TrackedArray::from_sorted(n, cfg);
        run(&mut arr);
        let q = arr.stats().max_per_proc();
        println!(
            "  {name:<18}: {q:>8} block I/Os  ({:.1}x a full scan)",
            q as f64 / scan as f64
        );
    }

    // --- GPU model: launches / transactions / compute per algorithm. --
    let n = (1usize << 20) - 1;
    println!("\nGPU cost model (N = {n}, K40-like parameters):");
    let algos = [
        gpu::GpuAlgorithm::InvolutionBst,
        gpu::GpuAlgorithm::InvolutionBtree { b: 31 },
        gpu::GpuAlgorithm::CycleLeaderBtree { b: 31 },
        gpu::GpuAlgorithm::CycleLeaderVeb,
    ];
    for algo in algos {
        let mut dev = Gpu::from_sorted(n, GpuConfig::default());
        let t = gpu::permute(&mut dev, algo);
        let c = dev.cost();
        println!(
            "  {:<20}: time {:>12.0} units  ({:>6} launches, {:>9} transactions)",
            algo.name(),
            t,
            c.launches,
            c.transactions
        );
    }
    println!("\nshapes to notice: cycle-leader B-tree cheapest; vEB pays for recursion launches");
}
