//! Quickstart: permute a sorted array in place into each layout and
//! query it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use implicit_search_trees::{permute_in_place, Algorithm, Layout, Searcher};

fn main() {
    let n = 1_000_000u64;
    println!("building a sorted array of {n} keys (values 0, 2, 4, …)");

    for (name, layout) in [
        ("bst", Layout::Bst),
        ("btree (B = 8)", Layout::Btree { b: 8 }),
        ("veb", Layout::Veb),
    ] {
        // Start from sorted data every time — the permutation is in place.
        let mut data: Vec<u64> = (0..n).map(|x| 2 * x).collect();

        let start = std::time::Instant::now();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let built = start.elapsed();

        let index = Searcher::for_layout(&data, layout);
        // Every even key is present, every odd key absent.
        assert!(index.contains(&123_456));
        assert!(!index.contains(&123_457));

        let queries: Vec<u64> = (0..100_000u64).map(|i| i * 37 % (2 * n)).collect();
        let start = std::time::Instant::now();
        let found = index.batch_count(&queries);
        let queried = start.elapsed();

        println!(
            "{name:>14}: permuted in {built:>10.3?}, 100k queries in {queried:>10.3?} ({found} hits)"
        );
    }

    println!("\nall layouts verified — see the `figures` binary for the full evaluation");
}
