//! A write-absorbing session store: the [`DynamicMap`] end of the
//! serving story.
//!
//! The static facades answer "serve this fixed key set as fast as the
//! cache allows"; real serving also has to absorb writes — sessions
//! appear, get refreshed, and expire, while reader threads keep
//! answering lookups. This example runs that shape end to end:
//!
//! 1. bulk-load yesterday's sessions into one static run,
//! 2. stream today's logins / refreshes / logouts through the write
//!    buffer — overflows **seal** cheap L0 runs while the k-way merges
//!    run on the background compaction worker (the default
//!    `CompactionMode`), so no write waits for a rebuild; the store
//!    runs a write-tuned [`CompactionPolicy`] (tiered fanout 4, lazy
//!    bottom) so steady churn never rewrites the big bulk-loaded run,
//!    2b. ingest a partner batch through the **bulk-delta** API
//!    (`batch_insert` / `batch_remove`): one sort + one pipelined
//!    weight sweep per resident run for the whole batch,
//! 3. serve batched point lookups from the live map the whole time
//!    (sealed-but-uncompacted runs keep answers exact mid-merge),
//! 4. hand a [`Reader`] to a separate thread that audits a frozen
//!    snapshot while the writer keeps mutating.
//!
//! Run with `cargo run --example session_store --release`.
//!
//! [`Reader`]: implicit_search_trees::Reader

use implicit_search_trees::{CompactionPolicy, DynamicMap, Layout};
use std::thread;

fn main() {
    // --- 1. bulk load: one run, cache-optimal vEB layout ---------------
    let yesterday: Vec<u64> = (0..200_000u64).map(|s| 3 * s).collect();
    let created: Vec<u64> = yesterday
        .iter()
        .map(|s| 1_700_000_000 + s % 86_400)
        .collect();
    let mut store: DynamicMap<u64, u64> = DynamicMap::build(yesterday, created, Layout::Veb)
        .expect("valid layout")
        // Write-tuned compaction: up to 4 sibling runs per tier, and
        // don't fold the 200k-version bulk run back in while the churn
        // above it stays small.
        .with_policy(CompactionPolicy::tiered(4).with_lazy_bottom(true));
    println!(
        "bulk-loaded {} sessions into {} run(s), tiers: {:?}",
        store.len(),
        store.run_count(),
        store.tier_versions()
    );

    // --- 2. absorb a day of writes -------------------------------------
    for s in 0..50_000u64 {
        match s % 5 {
            // new sessions (ids ≡ 1 mod 3: never in the bulk load)
            0..=2 => store.insert(3 * s + 1, 1_700_086_400 + s),
            // refreshes of existing sessions (overwrite)
            3 => store.insert(3 * (s % 200_000), 1_700_086_400 + s),
            // logouts (tombstones until a merge annihilates them)
            _ => store.remove(&(3 * (s % 200_000))),
        };
    }
    println!(
        "after 50k writes: {} live sessions, {} buffered, {} runs \
         ({} sealed awaiting compaction, worker in flight: {}), tiers: {:?}",
        store.len(),
        store.buffered_versions(),
        store.run_count(),
        store.sealed_runs(),
        store.compaction_in_flight(),
        store.tier_versions()
    );

    // --- 2b. bulk-delta ingest: a partner's session dump ---------------
    // One call sorts the batch, resolves every key's run weights with a
    // pipelined sweep per resident run, and merges the result into the
    // buffer linearly — no per-key descent cascades, no per-key O(cap)
    // memmove.
    let partner: Vec<(u64, u64)> = (0..20_000u64)
        .map(|s| (3 * s + 2, 1_700_090_000 + s))
        .collect();
    let already_live = store.batch_insert(partner);
    let expired = store.batch_remove(&(0..5_000u64).map(|s| 3 * s).collect::<Vec<_>>());
    println!(
        "bulk delta: 20k upserts ({already_live} were already live), 5k expiries \
         ({expired} were live), buffer moves so far: {}",
        store.buffer_element_moves()
    );

    // --- 3. batched serving off the live map ---------------------------
    let probes: Vec<u64> = (0..10_000u64).map(|i| i * 31 % 600_000).collect();
    let hits = store.batch_get(&probes).iter().flatten().count();
    println!("batched lookup: {hits}/{} probes live", probes.len());

    // --- 4. snapshot audit on another thread while writes continue -----
    let reader = store.reader();
    let audit = thread::spawn(move || {
        let snap = reader.snapshot();
        // Scan the live id space through order queries — on the frozen
        // view, so the writer can't shear it mid-scan.
        let mut cursor = snap.lower_bound(&0).map(|(k, _)| *k);
        let mut seen = 0u64;
        while let Some(k) = cursor {
            seen += 1;
            cursor = snap.successor(&k).map(|(k, _)| *k);
        }
        (snap.len(), seen)
    });
    for s in 0..5_000u64 {
        store.insert(7 * s + 5, 1_700_172_800 + s); // writer keeps going
    }
    let (snap_len, walked) = audit.join().expect("audit thread");
    assert_eq!(snap_len as u64, walked, "snapshot order-scan is exact");
    println!("audit thread walked {walked} sessions on its snapshot");
    println!("live map meanwhile advanced to {} sessions", store.len());

    // --- 5. drain the background compactor before shutdown -------------
    store.quiesce();
    println!(
        "after quiesce: 0 sealed runs, tiers: {:?}",
        store.tier_versions()
    );
}
