//! The paper's motivating workload: an ad-bidding engine spending ~10% of
//! its compute on binary searches over **static** sorted arrays (Khuong &
//! Morin's AppNexus observation, cited in the introduction).
//!
//! A bid floor table maps campaign price points to a **payload** — the
//! floor price to enforce and the deal it came from. [`StaticMap`]
//! carries the payloads through the layout permutation obliviously
//! (they are never compared; they are not even `Ord`), so every bid
//! request is one descent plus one payload read. This example measures
//! when permuting the table into a B-tree layout pays for itself
//! compared to leaving it sorted — the crossover question of
//! Figures 6.6/6.7 — with lookups served on the software-pipelined
//! batched engine.
//!
//! ```text
//! cargo run --release --example ad_bidding
//! ```

use implicit_search_trees::{Algorithm, Layout, QueryKind, StaticMap};
use std::time::Instant;

/// What the bidder needs back per price point. Deliberately not `Ord`,
/// not `Eq` — the map never compares payloads.
#[derive(Clone, Copy, Debug)]
struct Floor {
    /// Floor price in micro-dollars CPM.
    floor_micros: u64,
    /// Which programmatic deal set this floor.
    deal_id: u32,
}

fn main() {
    let n = 4_000_000usize;
    let b = 8; // 64-byte cache lines / 8-byte keys
    println!("bid floor table: {n} price points -> floor payloads, B-tree layout with B = {b}\n");

    // Price points in tenths of a cent (synthetic but realistic:
    // clustered around common floor prices). The jitter term makes the
    // raw sequence non-monotonic and StaticMap::build sorts it — while
    // keeping each price point's payload attached.
    let price_points: Vec<u64> = (0..n as u64).map(|i| 100 + i * 3 + (i % 7)).collect();
    let payloads: Vec<Floor> = price_points
        .iter()
        .map(|&p| Floor {
            floor_micros: p * 997,
            deal_id: (p % 1311) as u32,
        })
        .collect();

    // Bid requests: uniformly random lookups.
    let requests: Vec<u64> = {
        let mut x = 0x2545f4914f6cdd1du64;
        (0..2_000_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                100 + x % (3 * n as u64)
            })
            .collect()
    };

    // Option A: leave the table sorted; binary-search each request as
    // it arrives (the bidder's status-quo loop the paper starts from).
    let sorted_map = StaticMap::build_for_kind(
        price_points.clone(),
        payloads.clone(),
        QueryKind::Sorted,
        Algorithm::CycleLeader,
    )
    .unwrap();
    let sorted_searcher = sorted_map.searcher();
    let t0 = Instant::now();
    let floors_sorted: Vec<Option<&Floor>> = requests
        .iter()
        .map(|r| Some(&sorted_map.values()[sorted_searcher.search(r)?]))
        .collect();
    let t_binary = t0.elapsed();

    // Option B: permute once (in place — no second 32 MB buffer in the
    // bidder's memory budget; the payloads ride the same oblivious
    // permutation), then serve from the B-tree layout.
    let t0 = Instant::now();
    let btree_map = StaticMap::build(price_points, payloads, Layout::Btree { b }).unwrap();
    let t_permute = t0.elapsed();

    let btree_searcher = btree_map.searcher();
    let t0 = Instant::now();
    let floors_btree: Vec<Option<&Floor>> = requests
        .iter()
        .map(|r| Some(&btree_map.values()[btree_searcher.search(r)?]))
        .collect();
    let t_btree = t0.elapsed();

    // Requests arriving in batches can additionally overlap their
    // memory latency on the software-pipelined multi-descent engine.
    let t0 = Instant::now();
    let floors_batched = btree_map.batch_get(&requests);
    let t_batched = t0.elapsed();
    assert_eq!(floors_batched.len(), requests.len());

    // Same hits, same floors, independent of the layout.
    let mut revenue_floor = 0u64;
    for (a, b) in floors_sorted.iter().zip(&floors_btree) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.floor_micros, y.floor_micros);
                assert_eq!(x.deal_id, y.deal_id);
                revenue_floor += x.floor_micros;
            }
            _ => panic!("layouts disagree on a hit"),
        }
    }
    let hits = floors_btree.iter().filter(|f| f.is_some()).count();

    println!(
        "binary search   : {t_binary:>10.3?} for {} requests ({hits} hits)",
        requests.len()
    );
    println!("permute (once)  : {t_permute:>10.3?}  (keys + payloads, both in place)");
    println!(
        "B-tree lookups  : {t_btree:>10.3?} for {} requests (floor sum: {revenue_floor} µ$)",
        requests.len()
    );
    println!("B-tree batched  : {t_batched:>10.3?} on the pipelined multi-descent engine");

    let per_binary = t_binary.as_secs_f64() / requests.len() as f64;
    let per_btree = t_btree.as_secs_f64() / requests.len() as f64;
    if per_btree < per_binary {
        let crossover = t_permute.as_secs_f64() / (per_binary - per_btree);
        println!(
            "\npermutation pays for itself after ~{:.0} requests ({:.2}% of N) — \
             the paper reports ~1% of N on its CPU",
            crossover,
            100.0 * crossover / n as f64
        );
    } else {
        println!("\nB-tree queries were not faster on this machine/size; try a larger table");
    }
}
