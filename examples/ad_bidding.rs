//! The paper's motivating workload: an ad-bidding engine spending ~10% of
//! its compute on binary searches over **static** sorted arrays (Khuong &
//! Morin's AppNexus observation, cited in the introduction).
//!
//! A bid floor table maps campaign price points to floor prices; it is
//! rebuilt rarely and probed on every bid request. This example measures
//! when permuting the table into a B-tree layout pays for itself
//! compared to leaving it sorted — the crossover question of
//! Figures 6.6/6.7.
//!
//! ```text
//! cargo run --release --example ad_bidding
//! ```

use implicit_search_trees::{permute_in_place, Algorithm, Layout, QueryKind, Searcher};
use std::time::Instant;

fn main() {
    let n = 4_000_000usize;
    let b = 8; // 64-byte cache lines / 8-byte keys
    println!("bid floor table: {n} price points, B-tree layout with B = {b}\n");

    // Price points in tenths of a cent (synthetic but realistic:
    // clustered around common floor prices). The jitter term makes the
    // raw sequence non-monotonic, so sort before deduplicating — every
    // index here requires sorted input.
    let table: Vec<u64> = (0..n as u64).map(|i| 100 + i * 3 + (i % 7)).collect();
    let mut sorted_table = table.clone();
    sorted_table.sort_unstable();
    sorted_table.dedup();
    let table = sorted_table;
    let n = table.len();

    // Bid requests: uniformly random lookups.
    let requests: Vec<u64> = {
        let mut x = 0x2545f4914f6cdd1du64;
        (0..2_000_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                100 + x % (3 * n as u64)
            })
            .collect()
    };

    // Option A: leave the table sorted, binary search every request.
    let sorted_index = Searcher::new(&table, QueryKind::Sorted);
    let t0 = Instant::now();
    let hits_sorted = sorted_index.batch_count_seq(&requests);
    let t_binary = t0.elapsed();

    // Option B: permute once (in place — no second 32 MB buffer in the
    // bidder's memory budget), then query the B-tree layout.
    let mut permuted = table.clone();
    let t0 = Instant::now();
    permute_in_place(&mut permuted, Layout::Btree { b }, Algorithm::CycleLeader).unwrap();
    let t_permute = t0.elapsed();

    let btree_index = Searcher::new(&permuted, QueryKind::Btree(b));
    let t0 = Instant::now();
    let hits_btree = btree_index.batch_count_seq(&requests);
    let t_btree = t0.elapsed();

    assert_eq!(hits_sorted, hits_btree);
    println!(
        "binary search  : {t_binary:>10.3?} for {} requests",
        requests.len()
    );
    println!("permute (once) : {t_permute:>10.3?}");
    println!(
        "B-tree queries : {t_btree:>10.3?} for {} requests",
        requests.len()
    );

    let per_binary = t_binary.as_secs_f64() / requests.len() as f64;
    let per_btree = t_btree.as_secs_f64() / requests.len() as f64;
    if per_btree < per_binary {
        let crossover = t_permute.as_secs_f64() / (per_binary - per_btree);
        println!(
            "\npermutation pays for itself after ~{:.0} requests ({:.2}% of N) — \
             the paper reports ~1% of N on its CPU",
            crossover,
            100.0 * crossover / n as f64
        );
    } else {
        println!("\nB-tree queries were not faster on this machine/size; try a larger table");
    }
}
